package core

import (
	"fmt"
	"sort"
	"strings"

	"gomdb/internal/lang"
	"gomdb/internal/mvcc"
	"gomdb/internal/object"
	"gomdb/internal/schema"
	"gomdb/internal/storage"
)

// MVCC snapshot reads over GMR state.
//
// A writer holding the exclusive Database lock mutates GMR entries through
// insertEntry / markInvalid / setResult / removeEntry. Each of those runs
// under the manager's snapMu and, before mutating, records the entry's
// pre-image in entryVers tagged with the current stable version S — meaning
// "this was the entry's state at every version <= S". A reader pinned at
// version V reconstructs an entry as the capture with the smallest tag
// >= V, falling through to the live entry when no capture covers it
// (nothing has mutated it since V). Captures tagged below the reclamation
// floor (no pinned reader can reach them) are dropped at each publish.
//
// The Snapshot type bundles the reconstruction with a schema.Engine clone
// whose object reads resolve through the versioned object/page overlays and
// whose simulated charges land on a private throwaway clock — a pinned
// reader never perturbs the engine's cost counters, its trace, its
// statistics, or its cache-eviction state. Snapshot retrievals therefore
// deliberately skip the bookkeeping the live paths perform (touch charges,
// Stats counters, trace events, entry reference bits, memo fills): they
// return the same *values* the live path would have returned at version V,
// not the same side effects.

// entryCapture is one pre-image of a GMR entry: its state as of every
// version <= ver. exists == false records that the entry was absent (the
// pre-image of an insert). args may alias live state (argument vectors are
// never mutated in place); results and valid are copies.
type entryCapture struct {
	ver     uint64
	exists  bool
	args    []object.Value
	results []object.Value
	valid   []bool
}

// SetMVCC attaches the shared version state, enabling entry captures. Must
// be called before any concurrent use (the facade wires it at open).
func (m *Manager) SetMVCC(st *mvcc.State) {
	m.snapSt = st
	if st != nil && m.entryVers == nil {
		m.entryVers = make(map[string]map[string][]entryCapture)
	}
}

// captureEntry records the pre-image of entry k of g (e == nil: absent)
// unless the current stable version already has one. Caller holds snapMu.
func (m *Manager) captureEntry(g *GMR, k string, e *entry) {
	if m.snapSt == nil {
		return
	}
	stable := m.snapSt.Stable()
	per := m.entryVers[g.Name]
	if per == nil {
		per = make(map[string][]entryCapture)
		m.entryVers[g.Name] = per
	}
	caps := per[k]
	if n := len(caps); n > 0 && caps[n-1].ver == stable {
		return
	}
	c := entryCapture{ver: stable}
	if e != nil {
		c.exists = true
		c.args = e.Args
		c.results = append([]object.Value(nil), e.Results...)
		c.valid = append([]bool(nil), e.Valid...)
	}
	per[k] = append(caps, c)
}

// entryRowAt reconstructs entry k of g as of version ver. Caller holds
// snapMu (read or write). The returned row never aliases live entry state.
func (m *Manager) entryRowAt(g *GMR, k string, ver uint64) (Row, bool) {
	caps := m.entryVers[g.Name][k]
	i := sort.Search(len(caps), func(i int) bool { return caps[i].ver >= ver })
	if i < len(caps) {
		c := caps[i]
		if !c.exists {
			return Row{}, false
		}
		return Row{
			Args:    c.args,
			Results: append([]object.Value(nil), c.results...),
			Valid:   append([]bool(nil), c.valid...),
		}, true
	}
	e, ok := g.entries[k]
	if !ok {
		return Row{}, false
	}
	return Row{
		Args:    e.Args,
		Results: append([]object.Value(nil), e.Results...),
		Valid:   append([]bool(nil), e.Valid...),
	}, true
}

// entryRowsAt reconstructs the full extension of g as of version ver: the
// live insertion order first (entries inserted after ver reconstruct to
// absent and drop out), then any since-removed entries that still existed
// at ver, in sorted key order.
func (m *Manager) entryRowsAt(g *GMR, ver uint64) []Row {
	m.snapMu.RLock()
	defer m.snapMu.RUnlock()
	live := make(map[string]bool, len(g.order))
	var rows []Row
	for _, k := range g.order {
		live[k] = true
		if row, ok := m.entryRowAt(g, k, ver); ok {
			rows = append(rows, row)
		}
	}
	var extras []string
	for k := range m.entryVers[g.Name] {
		if !live[k] {
			extras = append(extras, k)
		}
	}
	sort.Strings(extras)
	for _, k := range extras {
		if row, ok := m.entryRowAt(g, k, ver); ok {
			rows = append(rows, row)
		}
	}
	return rows
}

// ReclaimEntryCaptures drops entry pre-images no pinned reader can reach
// (tags below floor). Called from the facade's publish point.
func (m *Manager) ReclaimEntryCaptures(floor uint64) {
	if m.snapSt == nil {
		return
	}
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	for name, per := range m.entryVers {
		for k, caps := range per {
			j := 0
			for j < len(caps) && caps[j].ver < floor {
				j++
			}
			if j == len(caps) {
				delete(per, k)
			} else if j > 0 {
				per[k] = append([]entryCapture(nil), caps[j:]...)
			}
		}
		if len(per) == 0 {
			delete(m.entryVers, name)
		}
	}
}

// EntryCaptureCount reports the number of retained entry pre-images
// (reclamation audits).
func (m *Manager) EntryCaptureCount() int {
	m.snapMu.RLock()
	defer m.snapMu.RUnlock()
	n := 0
	for _, per := range m.entryVers {
		for _, caps := range per {
			n += len(caps)
		}
	}
	return n
}

// Snapshot is a read-only view of the GMR manager and object base pinned at
// one MVCC version. It is safe to use concurrently with the single writer;
// its simulated charges land on a private clock and none of its operations
// mutate manager state.
type Snapshot struct {
	m     *Manager
	ver   uint64
	en    *schema.Engine
	clock *storage.Clock
}

// SnapshotAt returns a snapshot view pinned at version ver. The caller is
// responsible for holding an mvcc pin covering ver for the snapshot's
// lifetime (the Database facade pairs every SnapshotAt with State.Pin).
func (m *Manager) SnapshotAt(ver uint64) *Snapshot {
	s := &Snapshot{m: m, ver: ver, clock: storage.NewClock()}
	s.en = m.En.SnapshotAt(ver, s.clock)
	s.en.SetInterceptor(s.intercept)
	return s
}

// Version returns the pinned version.
func (s *Snapshot) Version() uint64 { return s.ver }

// Engine returns the snapshot's evaluation engine: object reads resolve at
// the pinned version, materialized calls route to Snapshot.Forward, and
// mutations fail with schema.ErrShadowMutation.
func (s *Snapshot) Engine() *schema.Engine { return s.en }

// intercept answers invocations of materialized functions from the
// snapshot, mirroring Manager.intercept.
func (s *Snapshot) intercept(fn *lang.Function, args []object.Value) (object.Value, bool, error) {
	if _, ok := s.m.byFunc[fn.Name]; !ok {
		return object.Null(), false, nil
	}
	v, err := s.Forward(fn.Name, args)
	return v, true, err
}

// Forward answers a forward query at the pinned version: the stored result
// when the entry was valid at the version, a recomputation against the
// versioned object base otherwise — exactly the value the live path would
// have returned (rematerialization and incremental insertion recompute the
// same function), without its GMR side effects.
func (s *Snapshot) Forward(fid string, args []object.Value) (object.Value, error) {
	g, ok := s.m.byFunc[fid]
	if !ok {
		return object.Null(), fmt.Errorf("%w: %s", ErrNotMaterialized, fid)
	}
	i := g.funcIndex(fid)
	if g.admitsArgs(args) {
		s.m.snapMu.RLock()
		row, ok := s.m.entryRowAt(g, argKey(args), s.ver)
		s.m.snapMu.RUnlock()
		if ok && row.Valid[i] {
			return row.Results[i], nil
		}
	}
	return s.computeRaw(g.Funcs[i], args)
}

// computeRaw evaluates the plain function against the pinned object base,
// mirroring Manager.computeRaw (dynamic dispatch resolved at the version,
// nested materialized calls uninterested — EvalRaw disables interception).
func (s *Snapshot) computeRaw(fn *lang.Function, args []object.Value) (object.Value, error) {
	return s.en.EvalRaw(s.dispatch(fn, args), args)
}

// dispatch mirrors Manager.dispatch with the receiver read at the pinned
// version.
func (s *Snapshot) dispatch(fn *lang.Function, args []object.Value) *lang.Function {
	dot := strings.IndexByte(fn.Name, '.')
	if dot < 0 || len(args) == 0 || args[0].Kind != object.KRef {
		return fn
	}
	o, err := s.m.Objs.GetVersioned(args[0].R, s.ver)
	if err != nil {
		return fn
	}
	if variant, ok := s.m.Sch.ResolveOp(o.Type, fn.Name[dot+1:]); ok {
		return variant
	}
	return fn
}

// Call invokes a declared function or operation against the snapshot
// (the snapshot path of Database.Call). Mutating operations fail with
// schema.ErrShadowMutation.
func (s *Snapshot) Call(fn string, args ...object.Value) (object.Value, error) {
	return s.en.CallFunction(fn, args)
}

// Extension returns the extension of typeName at the pinned version.
func (s *Snapshot) Extension(typeName string) []object.OID {
	return s.m.Objs.ExtensionVersioned(typeName, s.ver)
}

// Backward answers a backward range query at the pinned version: every
// argument combination whose fid result lies in [lb, ub], with results that
// were invalid at the version recomputed on the fly (the live path
// revalidates the column first — same values, no mutation). Matches are
// ordered by ascending result, ties by argument key, mirroring the live
// index scan.
func (s *Snapshot) Backward(fid string, lb, ub float64) ([]Match, error) {
	g, ok := s.m.byFunc[fid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotMaterialized, fid)
	}
	if !g.Complete {
		return nil, fmt.Errorf("%w: %s", ErrIncomplete, g.Name)
	}
	i := g.funcIndex(fid)
	if g.resIdx[i] == nil {
		return nil, fmt.Errorf("core: %s has a non-numeric result; no backward index", fid)
	}
	rows := s.m.entryRowsAt(g, s.ver)
	type scored struct {
		f float64
		m Match
	}
	var hits []scored
	for _, row := range rows {
		v := row.Results[i]
		if !row.Valid[i] {
			fresh, err := s.computeRaw(g.Funcs[i], row.Args)
			if err != nil {
				return nil, err
			}
			v = fresh
		}
		f, ok := v.AsFloat()
		if !ok {
			continue
		}
		if f < lb || f > ub {
			continue
		}
		hits = append(hits, scored{f: f, m: Match{Args: row.Args, Result: v}})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].f != hits[b].f {
			return hits[a].f < hits[b].f
		}
		return argKey(hits[a].m.Args) < argKey(hits[b].m.Args)
	})
	out := make([]Match, len(hits))
	for j, h := range hits {
		out[j] = h.m
	}
	return out, nil
}

// Retrieve answers a tabular GMR query at the pinned version. Constrained
// result columns that were invalid at the version are recomputed on the fly
// (the live path revalidates them first); unconstrained invalid columns
// keep their stale value with Valid == false, exactly like the live scan.
func (s *Snapshot) Retrieve(name string, spec []FieldSpec) ([]Row, error) {
	g, ok := s.m.gmrs[name]
	if !ok {
		return nil, fmt.Errorf("core: no GMR %q", name)
	}
	n, mm := len(g.ArgTypes), len(g.Funcs)
	if len(spec) != n+mm {
		return nil, fmt.Errorf("core: Retrieve on %s needs %d field specs, got %d", name, n+mm, len(spec))
	}
	match := func(args, results []object.Value) bool {
		cols := append(append([]object.Value{}, args...), results...)
		for i, f := range spec {
			if f.Exact != nil && !cols[i].Equal(*f.Exact) {
				return false
			}
			if f.Lo != nil || f.Hi != nil {
				v, ok := cols[i].AsFloat()
				if !ok {
					if cols[i].Kind == object.KRef {
						v = float64(cols[i].R)
					} else {
						return false
					}
				}
				if f.Lo != nil && v < *f.Lo {
					return false
				}
				if f.Hi != nil && v > *f.Hi {
					return false
				}
			}
		}
		return true
	}
	var rows []Row
	for _, row := range s.m.entryRowsAt(g, s.ver) {
		for i := 0; i < mm; i++ {
			if spec[n+i].constrained() && !row.Valid[i] {
				fresh, err := s.computeRaw(g.Funcs[i], row.Args)
				if err != nil {
					return nil, err
				}
				row.Results[i] = fresh
				row.Valid[i] = true
			}
		}
		if match(row.Args, row.Results) {
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// CheckConsistency audits Definition 3.2 (and, with checkComplete,
// Definition 3.4/6.1 completeness) for the named GMR at the pinned version:
// every entry valid at the version must equal a fresh recomputation against
// the versioned object base. This is the congruence audit of the snapshot
// machinery itself — a capture bug surfaces as a violation here.
func (s *Snapshot) CheckConsistency(name string, tol float64, checkComplete bool) (*ConsistencyReport, error) {
	g, ok := s.m.gmrs[name]
	if !ok {
		return nil, fmt.Errorf("core: no GMR %q", name)
	}
	rep := &ConsistencyReport{GMR: name}
	rows := s.m.entryRowsAt(g, s.ver)
	rep.Entries = len(rows)
	get := func(oid object.OID) (*object.Obj, error) {
		return s.m.Objs.GetVersioned(oid, s.ver)
	}
	for _, r := range rows {
		for i, fn := range g.Funcs {
			if !r.Valid[i] {
				rep.Invalid++
				continue
			}
			rep.Valid++
			fresh, err := s.en.EvalRaw(fn, r.Args)
			if err != nil {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s(%v): recomputation failed: %v", fn.Name, r.Args, err))
				continue
			}
			if !s.m.valuesEquivalent(get, r.Results[i], fresh, tol) {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s(%v): stored %v != fresh %v", fn.Name, r.Args, r.Results[i], fresh))
			}
		}
	}
	if checkComplete {
		combos, err := s.m.argCombinationsVia(s.Extension, g, -1, object.Null())
		if err != nil {
			return nil, err
		}
		present := make(map[string]bool, len(rows))
		for _, r := range rows {
			present[argKey(r.Args)] = true
		}
		want := 0
		for _, args := range combos {
			if !g.admitsArgs(args) {
				continue
			}
			if g.Restriction != nil {
				holds, err := s.en.EvalRaw(g.Restriction.Fn, args)
				if err != nil {
					return nil, err
				}
				if !holds.Truth() {
					if present[argKey(args)] {
						rep.Violations = append(rep.Violations,
							fmt.Sprintf("entry %v present but restriction predicate is false", args))
					}
					continue
				}
			}
			want++
			if !present[argKey(args)] {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("missing entry for argument combination %v", args))
			}
		}
		if want != len(rows) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("extension has %d entries, completeness requires %d", len(rows), want))
		}
	}
	return rep, nil
}

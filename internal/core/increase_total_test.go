package core_test

// The Section 5.4 primary example: the compensating action
//
//	define increase_total(new_cuboid: Cuboid, old_total: float): float is
//	    return old_total + new_cuboid.volume
//	end
//
// for the materialized function Workpieces.total_volume and the update
// operation Workpieces.insert. Inserting a cuboid into a workpiece set then
// costs one volume evaluation instead of re-summing the whole set.

import (
	"testing"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
	"gomdb/internal/lang"
)

func workpiecesDB(t *testing.T) (*gomdb.Database, *fixtures.Geometry, []gomdb.OID) {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 12, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Two workpiece sets over disjoint cuboids.
	var sets []gomdb.OID
	for s := 0; s < 2; s++ {
		var elems []gomdb.Value
		for i := 0; i < 4; i++ {
			elems = append(elems, gomdb.Ref(g.Cuboids[s*4+i]))
		}
		set, err := db.NewSet("Workpieces", elems...)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, set)
	}
	return db, g, sets
}

func TestIncreaseTotalCompensation(t *testing.T) {
	db, g, sets := workpiecesDB(t)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Workpieces.total_volume"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gmr.Len() != 2 {
		t.Fatalf("total_volume GMR has %d entries", gmr.Len())
	}
	// The paper's compensating action, in textual GOMpl. The receiver is
	// the Workpieces set; Definition 5.4's signature adds the update's
	// argument and the old result.
	if _, err := db.Schema.DefineOpSrc("Workpieces", `
		define increase_total(new_cuboid: Cuboid, old_total: float): float is
			return old_total + new_cuboid.volume
		end`, true); err != nil {
		t.Fatal(err)
	}
	comp, err := db.Schema.LookupFunction("Workpieces.increase_total")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.GMRs.DefineCompensation("Workpieces", "insert", "Workpieces.total_volume", comp); err != nil {
		t.Fatalf("DefineCompensation: %v", err)
	}

	before, err := db.Call("Workpieces.total_volume", gomdb.Ref(sets[0]))
	if err != nil {
		t.Fatal(err)
	}
	newCuboid := g.Cuboids[10] // in neither set
	vol, err := db.Call("Cuboid.volume", gomdb.Ref(newCuboid))
	if err != nil {
		t.Fatal(err)
	}

	db.GMRs.Stats = core.Stats{}
	if err := db.Insert(sets[0], gomdb.Ref(newCuboid)); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.Compensations != 1 {
		t.Fatalf("insert ran %d compensations (stats %+v)", db.GMRs.Stats.Compensations, db.GMRs.Stats)
	}
	if db.GMRs.Stats.Rematerializations != 0 {
		t.Fatalf("insert still rematerialized %d times", db.GMRs.Stats.Rematerializations)
	}
	after, err := db.Call("Workpieces.total_volume", gomdb.Ref(sets[0]))
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := before.AsFloat()
	vf, _ := vol.AsFloat()
	af, _ := after.AsFloat()
	if !valuesClose(gomdb.Float(af), gomdb.Float(bf+vf)) {
		t.Fatalf("compensated total %g, want %g + %g", af, bf, vf)
	}
	// The untouched set is unaffected.
	checkConsistent(t, db, gmr)

	// remove has no compensating action: it invalidates and (immediate)
	// recomputes the whole sum.
	db.GMRs.Stats = core.Stats{}
	if err := db.Remove(sets[0], gomdb.Ref(newCuboid)); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.Compensations != 0 {
		t.Fatalf("remove was compensated")
	}
	if db.GMRs.Stats.Rematerializations != 1 {
		t.Fatalf("remove caused %d rematerializations, want 1", db.GMRs.Stats.Rematerializations)
	}
	restored, err := db.Call("Workpieces.total_volume", gomdb.Ref(sets[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !valuesClose(restored, before) {
		t.Fatalf("total after remove %v, want %v", restored, before)
	}
	checkConsistent(t, db, gmr)
}

// TestCompensatedInsertRegistersDependencies: a regression test for a gap
// in the paper's Section 5.4 design — after a compensated insert, the newly
// inserted cuboid must carry RRR tuples for total_volume (the action read
// its volume), so a later scale of exactly that cuboid invalidates the
// total. Without tracking the action's accesses the total would go stale.
func TestCompensatedInsertRegistersDependencies(t *testing.T) {
	db, g, sets := workpiecesDB(t)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Workpieces.total_volume"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Schema.DefineOpSrc("Workpieces", `
		define increase_total(new_cuboid: Cuboid, old_total: float): float is
			return old_total + new_cuboid.volume
		end`, true); err != nil {
		t.Fatal(err)
	}
	comp, _ := db.Schema.LookupFunction("Workpieces.increase_total")
	if err := db.GMRs.DefineCompensation("Workpieces", "insert", "Workpieces.total_volume", comp); err != nil {
		t.Fatal(err)
	}
	newCuboid := g.Cuboids[11]
	if err := db.Insert(sets[0], gomdb.Ref(newCuboid)); err != nil {
		t.Fatal(err)
	}
	// The inserted cuboid must now be marked for total_volume.
	o, _ := db.Objects.Get(newCuboid)
	if !o.HasDepFct("Workpieces.total_volume") {
		t.Fatalf("compensated insert left %v unmarked: %v", newCuboid, o.DepFcts)
	}
	// Scaling it must invalidate (and immediately rematerialize) the total.
	s := fixtures.NewVertex(db, 3, 1, 1)
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(newCuboid), gomdb.Ref(s)); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, db, gmr)
}

// TestIncreaseTotalScaleStillInvalidates: the compensation is attached to
// insert only; scaling a member must go through normal invalidation —
// including the paper's warning scenario where a compensating action on the
// wrong (non-argument) operation would corrupt the GMR.
func TestIncreaseTotalScaleStillInvalidates(t *testing.T) {
	db, g, sets := workpiecesDB(t)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Workpieces.total_volume"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Schema.DefineOpSrc("Workpieces", `
		define increase_total(new_cuboid: Cuboid, old_total: float): float is
			return old_total + new_cuboid.volume
		end`, true); err != nil {
		t.Fatal(err)
	}
	comp, _ := db.Schema.LookupFunction("Workpieces.increase_total")
	if err := db.GMRs.DefineCompensation("Workpieces", "insert", "Workpieces.total_volume", comp); err != nil {
		t.Fatal(err)
	}
	// The paper forbids attaching the action to Cuboid.scale (a
	// non-argument type for total_volume): it would corrupt the GMR after
	// a remove leaves the cuboid marked.
	if err := db.GMRs.DefineCompensation("Cuboid", "scale", "Workpieces.total_volume", comp); err == nil {
		t.Fatal("compensation on non-argument type Cuboid accepted")
	}
	// Scaling a member invalidates through the elementary vertex updates.
	member := g.Cuboids[0]
	s := fixtures.NewVertex(db, 2, 1, 1)
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(member), gomdb.Ref(s)); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, db, gmr)
	_ = sets
	_ = lang.ElemSeg
}

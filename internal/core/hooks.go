package core

import (
	"fmt"
	"sort"

	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/schema"
)

// This file performs the schema rewrite for one GMR: deciding, per hook
// mode, which update operations of which types must notify the GMR manager,
// and installing the corresponding hook closures. The captured function sets
// play the role of the set-valued constants the paper compiles into the
// modified operations ("the set SchemaDepFct(t.set_A) is inserted as a
// set-valued constant into the body of the modified update operation").

type opKey struct {
	Type string
	Op   string
}

// hookPlan is the computed rewrite plan for one GMR.
type hookPlan struct {
	// elementary maps an elementary update operation to SchemaDepFct — the
	// materialized functions (incl. the restriction pseudo-function) that
	// depend on it (Definition 5.2).
	elementary map[opKey]map[string]bool
	// public maps a public operation of a strictly encapsulated type to the
	// relevant part of its declared InvalidatedFct (Definition 5.3).
	public map[opKey]map[string]bool
	// involved is the set of types touched by any materialization of this
	// GMR; delete hooks are installed on all of them.
	involved map[string]bool
	// conservative is set when static analysis failed; the basic Section 4
	// machinery is used for every operation of every type.
	conservative bool
}

// planHooks runs the Appendix analysis over the GMR's functions and derives
// the rewrite plan.
func (m *Manager) planHooks(g *GMR) (*hookPlan, error) {
	plan := &hookPlan{
		elementary: make(map[opKey]map[string]bool),
		public:     make(map[opKey]map[string]bool),
		involved:   make(map[string]bool),
	}
	type fctBody struct {
		fid string
		fn  *lang.Function
	}
	fcts := make([]fctBody, 0, len(g.Funcs)+1)
	for i, fn := range g.Funcs {
		fcts = append(fcts, fctBody{fn.Name, fn})
		// Subtype overrides contribute their relevant paths under the
		// column's function id: an update relevant only to the override
		// must still invalidate the column's entries.
		for _, variant := range g.variants[i] {
			fcts = append(fcts, fctBody{fn.Name, variant})
		}
	}
	if g.Restriction != nil {
		fcts = append(fcts, fctBody{g.predID(), g.Restriction.Fn})
	}
	addElementary := func(t, op, fid string) {
		k := opKey{t, op}
		if plan.elementary[k] == nil {
			plan.elementary[k] = make(map[string]bool)
		}
		plan.elementary[k][fid] = true
	}
	gmrFids := make(map[string]bool, len(fcts))
	for _, fb := range fcts {
		gmrFids[fb.fid] = true
	}
	for _, fb := range fcts {
		typed, err := m.extractor.TypedPaths(fb.fn)
		if err != nil {
			// ErrUnanalyzable (or typing failure): fall back to the
			// unsophisticated mechanism for the whole GMR.
			plan.conservative = true
			for _, tn := range m.Sch.Reg.Types() {
				plan.involved[tn] = true
			}
			return plan, nil
		}
		for _, tp := range typed {
			plan.involved[tp.RootType] = true
			// Walk the path outside-in. The first strictly encapsulated
			// type (with InvalidatedFct declarations) encountered covers
			// the rest of the path: its subobjects cannot be updated
			// without going through one of its public operations
			// (Section 5.3), so only those operations are rewritten and
			// all deeper elementary operations stay unmodified. Tracking
			// suspends at the same boundary (schema.Engine.CallFunction),
			// so ObjDepFct markings and hooks agree — which is also why the
			// coverage rule applies in every mode, not only ModeInfoHiding:
			// an encapsulated type's subobjects never carry RRR tuples.
			for _, pair := range tp.Pairs {
				plan.involved[pair.Type] = true
				t := m.Sch.Reg.Lookup(pair.Type)
				if t != nil && t.StrictEncapsulated && m.Sch.HasInvalidatedFctDecl(pair.Type) {
					for _, opName := range m.declaredInvalidatingOps(pair.Type, gmrFids) {
						k := opKey{pair.Type, opName}
						if plan.public[k] == nil {
							plan.public[k] = make(map[string]bool)
						}
						decl, _ := m.Sch.InvalidatedFct(pair.Type, opName)
						for fid := range decl {
							if gmrFids[fid] {
								plan.public[k][fid] = true
							}
						}
					}
					break
				}
				if pair.Attr == lang.ElemSeg {
					addElementary(pair.Type, "insert", fb.fid)
					addElementary(pair.Type, "remove", fb.fid)
				} else {
					addElementary(pair.Type, "set_"+pair.Attr, fb.fid)
				}
			}
		}
	}
	return plan, nil
}

// declaredInvalidatingOps returns the public operations of typeName whose
// declared InvalidatedFct intersects fids, sorted for determinism.
func (m *Manager) declaredInvalidatingOps(typeName string, fids map[string]bool) []string {
	var out []string
	for _, opName := range m.Sch.OpNames(typeName) {
		decl, ok := m.Sch.InvalidatedFct(typeName, opName)
		if !ok {
			continue
		}
		for fid := range decl {
			if fids[fid] {
				out = append(out, opName)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// installHooks applies the rewrite plan: this is the point where "only those
// types whose instances are involved in some materialization are modified
// and recompiled" while the remainder of the schema stays untouched.
func (m *Manager) installHooks(g *GMR) error {
	plan, err := m.planHooks(g)
	if err != nil {
		return err
	}
	var undo []func()
	install := func(typeName, op string, h *schema.UpdateHook) {
		for _, tn := range m.Sch.Reg.WithSubtypes(typeName) {
			undo = append(undo, m.En.Hooks.Install(tn, op, h))
		}
	}

	mode := g.Mode
	if plan.conservative {
		mode = ModeBasic
	}

	switch mode {
	case ModeBasic:
		// Figure 4: every elementary update operation of every involved
		// type notifies the manager unconditionally. Strictly encapsulated
		// types with InvalidatedFct declarations are additionally hooked on
		// those public operations: access tracking stops at the
		// encapsulation boundary (only the outer object carries RRR
		// tuples), so the notification must come from the outer operation.
		for tn := range plan.involved {
			t := m.Sch.Reg.Lookup(tn)
			if t == nil {
				continue
			}
			hook := &schema.UpdateHook{
				Name: g.Name,
				After: func(_ *schema.Engine, recv *object.Obj, _ []object.Value) error {
					return m.Invalidate(recv, nil)
				},
			}
			if t.StrictEncapsulated && m.Sch.HasInvalidatedFctDecl(tn) {
				for _, opName := range m.Sch.OpNames(tn) {
					if _, ok := m.Sch.InvalidatedFct(tn, opName); ok {
						install(tn, opName, hook)
					}
				}
				continue
			}
			switch t.Kind {
			case object.TupleType:
				for _, a := range m.Objs.Layout(tn) {
					install(tn, "set_"+a.Name, hook)
				}
			case object.SetType, object.ListType:
				install(tn, "insert", hook)
				install(tn, "remove", hook)
			}
		}
	case ModeSchemaDep, ModeObjDep, ModeInfoHiding:
		for k, fids := range plan.elementary {
			k, schemaDep := k, fids
			hook := &schema.UpdateHook{Name: g.Name}
			if mode == ModeSchemaDep {
				// Figure: invalidate(o, SchemaDepFct(t.op)); the manager is
				// invoked on every update of a relevant operation.
				hook.After = func(_ *schema.Engine, recv *object.Obj, _ []object.Value) error {
					relev := m.subtractCompensated(recv.Type, k.Op, copySet(schemaDep))
					if len(relev) == 0 {
						return nil
					}
					return m.Invalidate(recv, relev)
				}
			} else {
				// Figure 5: RelevFct := o.ObjDepFct ∩ SchemaDepFct(t.op);
				// only a non-empty intersection invokes the manager, so
				// "innocent" objects pay a single in-memory check.
				hook.After = func(_ *schema.Engine, recv *object.Obj, _ []object.Value) error {
					relev := intersectDep(recv.DepFcts, schemaDep)
					relev = m.subtractCompensated(recv.Type, k.Op, relev)
					if len(relev) == 0 {
						return nil
					}
					return m.Invalidate(recv, relev)
				}
			}
			install(k.Type, k.Op, hook)
		}
		// Public-operation hooks for strictly encapsulated types
		// (information hiding): one invalidation per outer-level operation,
		// none at all for operations declared result-invariant.
		for k, fids := range plan.public {
			k, invFct := k, fids
			hook := &schema.UpdateHook{
				Name: g.Name,
				After: func(_ *schema.Engine, recv *object.Obj, _ []object.Value) error {
					relev := intersectDep(recv.DepFcts, invFct)
					relev = m.subtractCompensated(recv.Type, k.Op, relev)
					if len(relev) == 0 {
						return nil
					}
					return m.Invalidate(recv, relev)
				},
			}
			install(k.Type, k.Op, hook)
		}
	}

	// Deletion: forget_object before the object disappears (Figure 4/5).
	// The ObjDepFct check of Figure 5 alone is not sufficient under lazy
	// rematerialization: lazy(o) strips the marks while the (invalidated)
	// entry still exists, so the supplementary argument index is consulted
	// as well.
	deleteHook := &schema.UpdateHook{
		Name: g.Name,
		Before: func(_ *schema.Engine, recv *object.Obj, _ []object.Value) error {
			if mode != ModeBasic && len(recv.DepFcts) == 0 && !m.hasEntriesWithArg(recv.OID) {
				return nil
			}
			return m.ForgetObject(recv)
		},
	}
	for tn := range plan.involved {
		install(tn, "delete", deleteHook)
	}

	// Creation: new_object on the argument types of complete GMRs.
	if g.Complete {
		createHook := &schema.UpdateHook{
			Name: g.Name,
			After: func(_ *schema.Engine, recv *object.Obj, _ []object.Value) error {
				return m.NewObject(recv)
			},
		}
		seen := make(map[string]bool)
		for _, at := range g.ArgTypes {
			if object.IsAtomicName(at) || seen[at] {
				continue
			}
			seen[at] = true
			install(at, "create", createHook)
		}
	}

	m.uninstall[g.Name] = undo
	return nil
}

// intersectDep intersects an object's sorted ObjDepFct slice with a schema
// set, allocating only when non-empty.
func intersectDep(dep []string, set map[string]bool) map[string]bool {
	var out map[string]bool
	for _, f := range dep {
		if set[f] {
			if out == nil {
				out = make(map[string]bool, 2)
			}
			out[f] = true
		}
	}
	return out
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// subtractCompensated removes functions with a compensating action for
// (typeName, op) from relev — the "\\ RelevFct" of the modified insert' in
// Section 5.4: compensated results were already fixed up by the Before hook
// and must not be invalidated.
func (m *Manager) subtractCompensated(typeName, op string, relev map[string]bool) map[string]bool {
	if len(relev) == 0 {
		return relev
	}
	comp := m.ca.fctsFor(m.Sch.Reg, typeName, op)
	if len(comp) == 0 {
		return relev
	}
	for f := range comp {
		delete(relev, f)
	}
	return relev
}

// InstalledHookCount reports how many hook rewrites exist; tests use it to
// show that dropping a GMR restores the original schema.
func (m *Manager) InstalledHookCount() int { return m.En.Hooks.Count() }

// DescribePlan returns a human-readable rewrite plan; the gomql shell's
// ".gmr" command prints it.
func (m *Manager) DescribePlan(g *GMR) string {
	plan, err := m.planHooks(g)
	if err != nil {
		return fmt.Sprintf("plan error: %v", err)
	}
	var lines []string
	if plan.conservative {
		lines = append(lines, "  (conservative: static analysis unavailable)")
	}
	var keys []opKey
	for k := range plan.elementary {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Type != keys[j].Type {
			return keys[i].Type < keys[j].Type
		}
		return keys[i].Op < keys[j].Op
	})
	for _, k := range keys {
		lines = append(lines, fmt.Sprintf("  %s.%s -> SchemaDepFct %v", k.Type, k.Op, sortedKeys(plan.elementary[k])))
	}
	keys = keys[:0]
	for k := range plan.public {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Type != keys[j].Type {
			return keys[i].Type < keys[j].Type
		}
		return keys[i].Op < keys[j].Op
	})
	for _, k := range keys {
		lines = append(lines, fmt.Sprintf("  %s.%s -> InvalidatedFct %v", k.Type, k.Op, sortedKeys(plan.public[k])))
	}
	if len(lines) == 0 {
		return "  (no update operations rewritten)"
	}
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}

func sortedKeys(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package core

// White-box regression test for the memo-epoch ordering bug: every GMR
// mutation entry point must publish its mutation *before* bumping the write
// epoch. The buggy order (bump, then mutate) left a window where a concurrent
// Forward loaded the fresh epoch, read the not-yet-invalidated entry, and
// memoized the stale result under the new epoch — a stale value the cache
// then served forever.
//
// The facade-level test (memo_epoch_test.go) cannot isolate this: a vertex
// move through Database.Set bumps twice (markInvalid, then the RRR tuple
// removal), and the second bump incidentally retires a memo poisoned at the
// first. This test lives inside package core so it can drive one markInvalid
// directly — the minimal single-bump mutation — with a reader interleaved at
// the exact bump point via the test hook.

import (
	"testing"

	"gomdb/internal/object"
	"gomdb/internal/schema"
	"gomdb/internal/storage"
)

// newBareManager wires a Manager without the Database facade (which package
// core cannot import).
func newBareManager(t *testing.T) (*Manager, *schema.Engine, *object.Manager) {
	t.Helper()
	clock := storage.NewClock()
	disk := storage.NewDisk(clock)
	pool := storage.NewPoolShards(disk, 256, 4)
	sch := schema.New()
	objs := object.NewManager(sch.Reg, pool, clock)
	en := schema.NewEngine(sch, objs, clock)
	m := NewManager(en, pool)

	if err := sch.DefineType(object.NewTupleType("R",
		object.AttrDef{Name: "Width", Type: "float", Public: true},
		object.AttrDef{Name: "Height", Type: "float", Public: true},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := sch.DefineOpSrc("R",
		"define area: float is return self.Width * self.Height end", true); err != nil {
		t.Fatal(err)
	}
	return m, en, objs
}

// TestMemoEpochSingleBumpOrdering interleaves a memo-caching reader at the
// write-epoch bump of one markInvalid. With the fixed order
// (mutate-then-bump) the reader finds the entry already invalid, recomputes,
// and the cache stays coherent. With the buggy order (bump-then-mutate) the
// reader races ahead of the invalidation, caches the stale result under the
// new epoch, and the final Forward serves it — this test fails on that code.
func TestMemoEpochSingleBumpOrdering(t *testing.T) {
	m, en, objs := newBareManager(t)

	oid, err := en.Create("R", []object.Value{object.Float(3), object.Float(2)})
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.Materialize(Options{
		Funcs:     []string{"R.area"},
		Complete:  true,
		Strategy:  Lazy,
		MemoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	args := []object.Value{object.Ref(oid)}
	// Warm the memo cache under the current epoch.
	if v, err := m.Forward("R.area", args); err != nil {
		t.Fatal(err)
	} else if v.F != 6 {
		t.Fatalf("warm Forward = %v, want 6", v)
	}

	// The racing reader: runs synchronously at the first epoch bump, exactly
	// where a concurrent goroutine could observe the new epoch.
	var raced bool
	var racedVal object.Value
	var racedErr error
	m.TestingSetEpochBumpHook(func() {
		if raced {
			return // rematerialization inside the raced read bumps again
		}
		raced = true
		racedVal, racedErr = m.Forward("R.area", args)
	})
	defer m.TestingSetEpochBumpHook(nil)

	// One update, reduced to its single GMR mutation: write the new attribute
	// value, then invalidate the dependent entry — the same publish/invalidate
	// pair the engine's update hooks perform, without the RRR maintenance
	// whose extra bump would mask the ordering.
	o, err := objs.Get(oid)
	if err != nil {
		t.Fatal(err)
	}
	o.Attrs[0] = object.Float(10) // Width: 3 -> 10
	if err := objs.Put(o); err != nil {
		t.Fatal(err)
	}
	if err := g.markInvalid(argKey(args), 0); err != nil {
		t.Fatal(err)
	}
	m.TestingSetEpochBumpHook(nil)

	if !raced {
		t.Fatal("epoch bump hook never fired")
	}
	if racedErr != nil {
		t.Fatalf("raced Forward: %v", racedErr)
	}
	// The raced reader ran after the bump; the invalidation must already be
	// visible to it, so it recomputes against the new attribute value.
	if racedVal.F != 20 {
		t.Fatalf("raced Forward = %v, want 20 (stale read: invalidation not yet published at bump)", racedVal)
	}
	// And nothing stale may survive in the memo cache: the post-update value
	// must be served from here on.
	if v, err := m.Forward("R.area", args); err != nil {
		t.Fatal(err)
	} else if v.F != 20 {
		t.Fatalf("post-update Forward = %v, want 20 (memo cache poisoned with stale result)", v)
	}
}

package core

import (
	"fmt"
	"sort"

	"gomdb/internal/object"
	"gomdb/internal/storage"
)

// RRR is the Reverse Reference Relation of Definition 4.1: tuples
// [O : OID, F : FunctionId, A : <OID>] recording that object O was accessed
// during the materialization of F with argument list A. References in the
// object base are unidirectional, so this relation is the only way to find
// the materialized results an updated object influences.
//
// Tuples are stored in a paged heap file — an RRR lookup therefore costs
// page I/O, which is exactly the update penalty the paper's Section 5
// machinery works to avoid — with an in-memory hash index on the O
// attribute (the access path every invalidation uses) and a per-(O,F)
// counter that keeps the ObjDepFct markings of Section 5.2 consistent with
// the relation.
type RRR struct {
	heap  *storage.HeapFile
	byObj map[object.OID]map[string]storage.RID
	dep   map[depKey]int
}

type depKey struct {
	O object.OID
	F string
}

// Tuple is one decoded RRR tuple.
type Tuple struct {
	O    object.OID
	F    string
	Args []object.Value

	// key is the encoded relation key the tuple was found under, filled by
	// Lookup (where it is the map key, i.e. free). Invalidation processes
	// every looked-up tuple at least once more — to remove it, or to address
	// the GMR entry it names — and carrying the key avoids re-encoding the
	// argument combination for each of those steps.
	key string
}

// argSuffix returns the encoded argument-combination key of the tuple — the
// GMR entry key its invalidation addresses — reusing the stored relation key
// when present instead of re-encoding the arguments.
func (t Tuple) argSuffix() string {
	if t.key != "" {
		return t.key[len(t.F)+1:]
	}
	return argKey(t.Args)
}

func (t Tuple) String() string {
	return fmt.Sprintf("[%v, %s, %v]", t.O, t.F, t.Args)
}

// NewRRR returns an empty relation backed by pool.
func NewRRR(pool *storage.BufferPool) *RRR {
	return &RRR{
		heap:  storage.NewHeapFile(pool, "RRR"),
		byObj: make(map[object.OID]map[string]storage.RID),
		dep:   make(map[depKey]int),
	}
}

// Len returns the number of tuples.
func (r *RRR) Len() int { return r.heap.Count() }

func rrrKey(f string, args []object.Value) string {
	return f + "\x00" + argKey(args)
}

func encodeTuple(t Tuple) []byte {
	v := object.ListVal(append([]object.Value{object.String_(t.F), object.Ref(t.O)}, t.Args...)...)
	return object.EncodeValue(v)
}

func decodeTuple(buf []byte) (Tuple, error) {
	v, _, err := object.DecodeValue(buf)
	if err != nil {
		return Tuple{}, err
	}
	if v.Kind != object.KList || len(v.Elems) < 2 {
		return Tuple{}, fmt.Errorf("core: malformed RRR tuple %v", v)
	}
	return Tuple{
		F:    v.Elems[0].S,
		O:    v.Elems[1].R,
		Args: v.Elems[2:],
	}, nil
}

// Insert adds [o, f, args] if not present (the "if not present" of the
// immediate(o) algorithm's step 3). It reports whether the tuple was new and
// whether it is the first tuple for the (o, f) pair — the signal to add f to
// o's ObjDepFct.
func (r *RRR) Insert(o object.OID, f string, args []object.Value) (isNew, firstForFct bool, err error) {
	m := r.byObj[o]
	if m == nil {
		m = make(map[string]storage.RID)
		r.byObj[o] = m
	}
	k := rrrKey(f, args)
	if _, dup := m[k]; dup {
		return false, false, nil
	}
	rid, err := r.heap.Insert(encodeTuple(Tuple{O: o, F: f, Args: args}))
	if err != nil {
		return false, false, err
	}
	m[k] = rid
	dk := depKey{o, f}
	r.dep[dk]++
	return true, r.dep[dk] == 1, nil
}

// Remove deletes [o, f, args]. It reports whether the tuple existed and
// whether it was the last tuple for the (o, f) pair — the signal to remove
// f from o's ObjDepFct.
func (r *RRR) Remove(o object.OID, f string, args []object.Value) (existed, lastForFct bool, err error) {
	return r.RemoveByKey(o, f, rrrKey(f, args))
}

// RemoveByKey is Remove for a caller that already holds the encoded relation
// key (a Tuple returned by Lookup), sparing the re-encoding of the argument
// combination.
func (r *RRR) RemoveByKey(o object.OID, f, k string) (existed, lastForFct bool, err error) {
	m := r.byObj[o]
	rid, ok := m[k]
	if !ok {
		return false, false, nil
	}
	if err := r.heap.Delete(rid); err != nil {
		return false, false, err
	}
	delete(m, k)
	if len(m) == 0 {
		delete(r.byObj, o)
	}
	dk := depKey{o, f}
	r.dep[dk]--
	last := r.dep[dk] == 0
	if last {
		delete(r.dep, dk)
	}
	return true, last, nil
}

// Lookup returns all tuples for object o, reading each record through the
// buffer pool (the charged RRR lookup of the invalidation algorithms). A
// miss still probes one bucket page: finding out that no tuple exists is
// exactly the penalty Section 5.2's ObjDepFct marking avoids paying.
func (r *RRR) Lookup(o object.OID) ([]Tuple, error) {
	m := r.byObj[o]
	if len(m) == 0 {
		if err := r.heap.ProbePage(uint64(o) * 0x9e3779b97f4a7c15); err != nil {
			return nil, err
		}
		return nil, nil
	}
	// Deterministic processing order: map iteration order would make the
	// physical page-access pattern (and thus the simulated benchmarks)
	// vary from run to run.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, 0, len(m))
	for _, k := range keys {
		rec, err := r.heap.Read(m[k])
		if err != nil {
			return nil, err
		}
		t, err := decodeTuple(rec)
		if err != nil {
			return nil, err
		}
		t.key = k
		out = append(out, t)
	}
	return out, nil
}

// HasEntriesFor reports whether any tuple references object o; the Figure 5
// delete operation uses ObjDepFct for this, but tests use the relation
// directly.
func (r *RRR) HasEntriesFor(o object.OID) bool { return len(r.byObj[o]) > 0 }

// FctCount returns the number of tuples for the (o, f) pair.
func (r *RRR) FctCount(o object.OID, f string) int { return r.dep[depKey{o, f}] }

// Scan calls fn for every tuple; used by tests and diagnostics.
func (r *RRR) Scan(fn func(Tuple) bool) error {
	return r.heap.Scan(func(_ storage.RID, rec []byte) bool {
		t, err := decodeTuple(rec)
		if err != nil {
			return true
		}
		return fn(t)
	})
}

package core

import (
	"fmt"

	"gomdb/internal/gridfile"
	"gomdb/internal/object"
)

// Section 3.2 describes GMR retrieval operations "in a tabular way" (QBE
// style): each column of the GMR — arguments O1..On and results f1..fm —
// carries a constant, a range, a '?' (retrieve), or a '-' (don't care).
// Section 3.3 proposes a single multidimensional storage structure (MDS)
// over all columns for GMRs of low arity. This file implements both: an
// optional Grid File over the n+m key columns, and the generic Retrieve
// entry point that uses it (falling back to an extension scan when the GMR
// has no MDS).

// FieldSpec constrains one GMR column in a Retrieve call. The zero value is
// the "don't care" / '?' column: unconstrained.
type FieldSpec struct {
	// Exact matches the column against one value (object identity for
	// argument columns).
	Exact *object.Value
	// Lo/Hi give an inclusive range for numeric columns.
	Lo, Hi *float64
}

// constrained reports whether the column restricts the search.
func (f FieldSpec) constrained() bool { return f.Exact != nil || f.Lo != nil || f.Hi != nil }

// ExactSpec constrains a column to a single value.
func ExactSpec(v object.Value) FieldSpec { return FieldSpec{Exact: &v} }

// RangeSpec constrains a numeric column to [lo, hi].
func RangeSpec(lo, hi float64) FieldSpec { return FieldSpec{Lo: &lo, Hi: &hi} }

// AnySpec leaves a column unconstrained.
func AnySpec() FieldSpec { return FieldSpec{} }

// Row is one retrieved GMR tuple. Valid mirrors the GMR's validity flags:
// a column that was neither constrained nor revalidated may carry a stale
// value with Valid[i] == false — the '-' (don't care) columns of the
// paper's tabular notation. Constrain a column (or call Revalidate) to
// force it valid.
type Row struct {
	Args    []object.Value
	Results []object.Value
	Valid   []bool
}

// mdsKey maps a GMR tuple onto the grid file's numeric key space: argument
// references by their OID, atomic values numerically.
func mdsKey(args, results []object.Value) ([]float64, bool) {
	key := make([]float64, 0, len(args)+len(results))
	for _, v := range append(append([]object.Value{}, args...), results...) {
		switch v.Kind {
		case object.KRef:
			key = append(key, float64(v.R))
		case object.KInt:
			key = append(key, float64(v.I))
		case object.KFloat:
			key = append(key, v.F)
		case object.KBool:
			if v.B {
				key = append(key, 1)
			} else {
				key = append(key, 0)
			}
		default:
			return nil, false
		}
	}
	return key, true
}

// initMDS creates the grid file when the GMR qualifies: requested, arity
// n+m within the grid file's limit, and all result columns numeric.
func (m *Manager) initMDS(g *GMR) error {
	dims := len(g.ArgTypes) + len(g.Funcs)
	if dims > gridfile.MaxDims {
		return fmt.Errorf("core: GMR %s has arity %d; the MDS supports at most %d dimensions (Section 3.3) — use the conventional indexes", g.Name, dims, gridfile.MaxDims)
	}
	for _, fn := range g.Funcs {
		if !isNumericType(fn.ResultType) {
			return fmt.Errorf("core: MDS requires numeric result columns; %s returns %s", fn.Name, fn.ResultType)
		}
	}
	mds, err := gridfile.New(m.Pool, g.Name, dims)
	if err != nil {
		return err
	}
	g.mds = mds
	return nil
}

// mdsInsert/mdsDelete keep the grid file synchronized with the extension.
func (g *GMR) mdsInsert(e *entry) error {
	if g.mds == nil {
		return nil
	}
	key, ok := mdsKey(e.Args, e.Results)
	if !ok {
		return nil
	}
	return g.mds.Insert(key, e)
}

func (g *GMR) mdsDelete(e *entry) error {
	if g.mds == nil {
		return nil
	}
	key, ok := mdsKey(e.Args, e.Results)
	if !ok {
		return nil
	}
	_, err := g.mds.Delete(key, func(v any) bool { return v == any(e) })
	return err
}

// HasMDS reports whether the GMR carries a multidimensional index.
func (g *GMR) HasMDS() bool { return g.mds != nil }

// detachedRow builds a result row that does not alias the entry's live
// Results/Valid slices. Retrieve is answered under the shared lock, but
// callers read the rows after it is released, while a later update may be
// rematerializing the same entries in place (setResult/Invalidate mutate
// Results and Valid element-wise). Args are immutable once an entry is
// inserted — entries are keyed by them — so they stay shared, mirroring
// the MVCC snapshot's entryRowAt.
func detachedRow(e *entry) Row {
	return Row{
		Args:    e.Args,
		Results: append([]object.Value(nil), e.Results...),
		Valid:   append([]bool(nil), e.Valid...),
	}
}

// Retrieve answers a tabular GMR query: spec has one FieldSpec per column
// (n argument columns followed by m result columns). Constrained result
// columns are revalidated first — an invalid result could otherwise
// wrongly miss the window. With an MDS the search visits only intersecting
// buckets; otherwise the extension is scanned.
func (m *Manager) Retrieve(name string, spec []FieldSpec) ([]Row, error) {
	g, ok := m.gmrs[name]
	if !ok {
		return nil, fmt.Errorf("core: no GMR %q", name)
	}
	n, mm := len(g.ArgTypes), len(g.Funcs)
	if len(spec) != n+mm {
		return nil, fmt.Errorf("core: Retrieve on %s needs %d field specs, got %d", name, n+mm, len(spec))
	}
	for i := 0; i < mm; i++ {
		if spec[n+i].constrained() {
			if err := m.revalidateColumn(g, i); err != nil {
				return nil, err
			}
		}
	}
	match := func(args, results []object.Value) bool {
		cols := append(append([]object.Value{}, args...), results...)
		for i, f := range spec {
			if f.Exact != nil && !cols[i].Equal(*f.Exact) {
				return false
			}
			if f.Lo != nil || f.Hi != nil {
				v, ok := cols[i].AsFloat()
				if !ok {
					if cols[i].Kind == object.KRef {
						v = float64(cols[i].R)
					} else {
						return false
					}
				}
				if f.Lo != nil && v < *f.Lo {
					return false
				}
				if f.Hi != nil && v > *f.Hi {
					return false
				}
			}
		}
		return true
	}
	var rows []Row
	if g.mds != nil {
		q := make([]gridfile.Range, n+mm)
		for i, f := range spec {
			switch {
			case f.Exact != nil:
				v := *f.Exact
				fv, ok := v.AsFloat()
				if !ok && v.Kind == object.KRef {
					fv, ok = float64(v.R), true
				}
				if !ok {
					return nil, fmt.Errorf("core: non-numeric exact spec %v on MDS column %d", v, i)
				}
				q[i] = gridfile.Exact(fv)
			case f.Lo != nil || f.Hi != nil:
				lo, hi := -1e308, 1e308
				if f.Lo != nil {
					lo = *f.Lo
				}
				if f.Hi != nil {
					hi = *f.Hi
				}
				q[i] = gridfile.Between(lo, hi)
			default:
				q[i] = gridfile.Any()
			}
		}
		var touchErr error
		err := g.mds.Search(q, func(e gridfile.Entry) bool {
			ge := e.Val.(*entry)
			// Skip stale keys of invalidated-but-unconstrained columns and
			// re-check exact values (OID-to-float mapping is injective for
			// realistic OIDs, but the residual check keeps it airtight).
			if match(ge.Args, ge.Results) {
				if terr := g.touch(ge); terr != nil {
					touchErr = terr
					return false
				}
				rows = append(rows, detachedRow(ge))
			}
			return true
		})
		if err == nil {
			err = touchErr
		}
		if err != nil {
			return nil, err
		}
		return rows, nil
	}
	// Extension scan: every tuple is read to test the specification (unlike
	// the MDS path, which visits only intersecting buckets).
	for _, k := range g.order {
		e := g.entries[k]
		if err := g.touch(e); err != nil {
			return nil, err
		}
		if match(e.Args, e.Results) {
			rows = append(rows, detachedRow(e))
		}
	}
	return rows, nil
}

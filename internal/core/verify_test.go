package core_test

import (
	"strings"
	"testing"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

// TestCheckConsistencyCleanAndComplete: a freshly materialized GMR passes
// the online checker.
func TestCheckConsistencyCleanAndComplete(t *testing.T) {
	db, _ := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := db.GMRs.CheckConsistency(gmr.Name, 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 3 || rep.Valid != 6 || rep.Invalid != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if _, err := db.GMRs.CheckConsistency("nope", 1e-9, false); err == nil {
		t.Fatal("check of unknown GMR succeeded")
	}
}

// TestCheckConsistencyDetectsCorruption: a result corrupted behind the
// manager's back is reported.
func TestCheckConsistencyDetectsCorruption(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the base data without going through the rewritten update
	// path: write the vertex object directly via the object manager.
	c, _ := db.Objects.Get(g.Cuboids[0])
	v2 := c.Attrs[db.Objects.AttrIndex("Cuboid", "V2")].R
	vo, _ := db.Objects.Get(v2)
	vo.Attrs[0] = gomdb.Float(999)
	if err := db.Objects.Put(vo); err != nil {
		t.Fatal(err)
	}
	rep, err := db.GMRs.CheckConsistency(gmr.Name, 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("corruption not detected")
	}
	if rep.Err() == nil {
		t.Fatal("Err() nil despite violations")
	}
}

// TestCheckConsistencyRestricted verifies the Definition 6.1 completeness
// branch of the checker on a restricted GMR.
func TestCheckConsistencyRestricted(t *testing.T) {
	db, _ := restrictedDB(t, 25)
	gmr := materializeIronOnly(t, db, core.Immediate)
	rep, err := db.GMRs.CheckConsistency(gmr.Name, 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Entries == 0 {
		t.Fatal("vacuous check")
	}
}

// TestTraceEvents: the trace hook observes the expected maintenance events.
func TestTraceEvents(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	var events []string
	db.GMRs.SetTrace(func(e core.TraceEvent) { events = append(events, e.String()) })

	// An update triggers invalidate + rematerialize.
	c, _ := db.Objects.Get(g.Cuboids[0])
	v2 := c.Attrs[db.Objects.AttrIndex("Cuboid", "V2")].R
	if err := db.Set(v2, "X", gomdb.Float(20)); err != nil {
		t.Fatal(err)
	}
	// A forward call hits; a backward query emits a backward event.
	if _, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GMRs.Backward("Cuboid.volume", 0, 1e9); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(events, "\n")
	for _, want := range []string{"invalidate Cuboid.volume", "rematerialize Cuboid.volume", "forward_hit", "backward"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
	// Create/delete trace.
	events = nil
	oid := fixtures.NewCuboid(db, 77, 0, 0, 0, 1, 1, 1, g.MaterialO[0], 1)
	if err := db.Delete(oid); err != nil {
		t.Fatal(err)
	}
	joined = strings.Join(events, "\n")
	for _, want := range []string{"new_object", "forget_object"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
	// Disable.
	db.GMRs.SetTrace(nil)
	events = nil
	if err := db.Set(v2, "X", gomdb.Float(21)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatal("disabled trace still fired")
	}
}

// TestTraceCompensateAndPredicate: the remaining trace event kinds.
func TestTraceCompensateAndPredicate(t *testing.T) {
	// Compensation events via the Workpieces example.
	db, g, sets := workpiecesDB(t)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Workpieces.total_volume"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Schema.DefineOpSrc("Workpieces", `
		define increase_total(new_cuboid: Cuboid, old_total: float): float is
			return old_total + new_cuboid.volume
		end`, true); err != nil {
		t.Fatal(err)
	}
	comp, _ := db.Schema.LookupFunction("Workpieces.increase_total")
	if err := db.GMRs.DefineCompensation("Workpieces", "insert", "Workpieces.total_volume", comp); err != nil {
		t.Fatal(err)
	}
	var events []string
	db.GMRs.SetTrace(func(e core.TraceEvent) { events = append(events, e.Op) })
	if err := db.Insert(sets[1], gomdb.Ref(g.Cuboids[10])); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range events {
		if e == "compensate" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no compensate event in %v", events)
	}

	// Predicate events via a restricted GMR.
	db2, g2 := restrictedDB(t, 10)
	materializeIronOnly(t, db2, core.Immediate)
	var events2 []string
	db2.GMRs.SetTrace(func(e core.TraceEvent) { events2 = append(events2, e.Op) })
	if err := db2.Set(g2.Cuboids[0], "Mat", gomdb.Ref(g2.MaterialO[1])); err != nil {
		t.Fatal(err)
	}
	found = false
	for _, e := range events2 {
		if e == "predicate" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no predicate event in %v", events2)
	}
}

package core

import (
	"sort"

	"gomdb/internal/object"
)

// Durable catalog of the GMR manager. A checkpoint does NOT persist GMR
// extensions, RRR tuples, indexes, or the deferred queue — only the catalog
// below: enough to re-issue every Materialize on recovery. Recovery therefore
// "re-validates by recomputation": complete GMRs are fully repopulated from
// the restored object base (so every entry is correct by construction, and an
// invalidation that was in flight at crash time is healed rather than
// replayed), while incremental GMRs come back as empty caches (their entries
// are dropped — a cache refills, it is never stale). This is also why pending
// deferred work never survives a crash as a silently-stale valid result:
// there is no persisted entry for it to hide in.

// GMRMeta is the persisted description of one GMR: the Options it was created
// with, in serializable form. Restriction predicates and atomic-argument
// restrictions are function values (Go ASTs/closures) and cannot be
// persisted; the facade refuses to materialize restricted GMRs on a durable
// database, so Restricted is recorded purely as a guard against catalogs
// written by future formats.
type GMRMeta struct {
	Name         string   `json:"name"`
	Funcs        []string `json:"funcs"`
	Strategy     uint8    `json:"strategy"`
	Mode         uint8    `json:"mode"`
	Complete     bool     `json:"complete,omitempty"`
	MaxEntries   int      `json:"maxEntries,omitempty"`
	SecondChance bool     `json:"secondChance,omitempty"`
	UseMDS       bool     `json:"useMDS,omitempty"`
	Memo         bool     `json:"memo,omitempty"`
	Restricted   bool     `json:"restricted,omitempty"`
}

// Options reconstructs the Materialize options the meta entry describes.
func (gm GMRMeta) Options() Options {
	return Options{
		Name:         gm.Name,
		Funcs:        append([]string(nil), gm.Funcs...),
		Strategy:     Strategy(gm.Strategy),
		Mode:         HookMode(gm.Mode),
		Complete:     gm.Complete,
		MaxEntries:   gm.MaxEntries,
		SecondChance: gm.SecondChance,
		UseMDS:       gm.UseMDS,
		MemoCache:    gm.Memo,
	}
}

// ExportCatalog returns the catalog of all installed GMRs, sorted by name so
// the checkpoint metadata is byte-deterministic.
func (m *Manager) ExportCatalog() []GMRMeta {
	names := make([]string, 0, len(m.gmrs))
	for n := range m.gmrs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]GMRMeta, 0, len(names))
	for _, n := range names {
		g := m.gmrs[n]
		out = append(out, GMRMeta{
			Name:         g.Name,
			Funcs:        g.FuncIDs(),
			Strategy:     uint8(g.Strategy),
			Mode:         uint8(g.Mode),
			Complete:     g.Complete,
			MaxEntries:   g.MaxEntries,
			SecondChance: g.SecondChance,
			UseMDS:       g.mds != nil,
			Memo:         g.Memo,
			Restricted:   g.Restriction != nil || len(g.AtomicArgs) > 0,
		})
	}
	return out
}

// ResultObjectIDs returns the sorted OIDs of objects created to store complex
// materialized results. They are persisted so a recovered manager keeps
// garbage-collecting the previous incarnation's result objects.
func (m *Manager) ResultObjectIDs() []object.OID {
	out := make([]object.OID, 0, len(m.resultObjs))
	for oid := range m.resultObjs {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RestoreResultObjects re-registers persisted result-object OIDs after
// recovery, skipping any that no longer exist (already collected, but the
// delete had not been checkpointed — impossible with checkpoint-per-batch,
// tolerated for robustness).
func (m *Manager) RestoreResultObjects(oids []object.OID) {
	for _, oid := range oids {
		if m.Objs.Exists(oid) {
			m.resultObjs[oid] = true
		}
	}
}

package core

import (
	"sort"
	"sync/atomic"

	"gomdb/internal/object"
	"gomdb/internal/storage"
)

// Forward-trace capture for trace-driven clustering. Every (re)computation of
// a materialized result records the ordered sequence of objects the
// evaluation read (first access only); the clustering pass turns consecutive
// trace positions into co-access affinity edges and relocates the object heap
// so those objects share pages. Traces are bookkeeping, not data: recording
// charges nothing, traces die with their entry or GMR, and stale OIDs (the
// object was deleted after the trace was taken) are filtered by the consumer.

// traceKey identifies the forward trace of one result column of one entry.
type traceKey struct {
	gmr string
	key string // encoded argument combination (entry key)
	col int
}

// AccessStats aggregates the per-GMR forward-access statistics exposed
// through Manager.GMRAccessStats: how many traces were recorded, how many
// objects they touched, and how many distinct object-heap pages each
// computation had to visit under the placement current at trace time. The
// page counts are the clustering pass's before-picture — a computation whose
// trace touches fewer distinct pages after relocation is the win the pass
// exists for.
type AccessStats struct {
	Traces        int64 // forward computations whose trace was recorded
	TraceObjects  int64 // objects across recorded traces (first accesses)
	DistinctPages int64 // distinct object-heap pages across recorded traces
}

// recordTrace stores the ordered forward trace of column col of the entry
// with key k, replacing any previous trace for the same result. raw may
// contain repeats (the deferred shadow trace does); the stored trace keeps
// the first access only, matching EvalTrackedOrdered semantics.
func (m *Manager) recordTrace(g *GMR, k string, col int, raw []object.OID) {
	tk := traceKey{g.Name, k, col}
	if len(raw) == 0 {
		delete(m.accessTraces, tk)
		return
	}
	trace := make([]object.OID, 0, len(raw))
	seen := make(map[object.OID]struct{}, len(raw))
	pages := make(map[storage.PageID]struct{}, len(raw))
	for _, oid := range raw {
		if _, dup := seen[oid]; dup {
			continue
		}
		seen[oid] = struct{}{}
		trace = append(trace, oid)
		if rid, ok := m.Objs.RIDOf(oid); ok {
			pages[rid.Page] = struct{}{}
		}
	}
	m.accessTraces[tk] = trace
	st := m.accessStats[g.Name]
	if st == nil {
		st = &AccessStats{}
		m.accessStats[g.Name] = st
	}
	st.Traces++
	st.TraceObjects += int64(len(trace))
	st.DistinctPages += int64(len(pages))
	atomic.AddInt64(&m.Stats.ForwardTraces, 1)
	atomic.AddInt64(&m.Stats.TraceObjects, int64(len(trace)))
	atomic.AddInt64(&m.Stats.TracePages, int64(len(pages)))
}

// clearEntryTraces drops the traces of every column of the entry with key k;
// called when the entry leaves the extension.
func (m *Manager) clearEntryTraces(g *GMR, k string) {
	for col := range g.Funcs {
		delete(m.accessTraces, traceKey{g.Name, k, col})
	}
}

// dropTraces drops all traces and access statistics of a GMR being removed.
func (m *Manager) dropTraces(name string) {
	for tk := range m.accessTraces {
		if tk.gmr == name {
			delete(m.accessTraces, tk)
		}
	}
	delete(m.accessStats, name)
}

// AccessTraces returns every recorded forward trace in canonical order —
// sorted by (GMR name, entry key, column) — so consumers iterate
// deterministically regardless of map layout. The returned slices alias the
// stored traces and must not be mutated.
func (m *Manager) AccessTraces() [][]object.OID {
	keys := make([]traceKey, 0, len(m.accessTraces))
	for tk := range m.accessTraces {
		keys = append(keys, tk)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.gmr != b.gmr {
			return a.gmr < b.gmr
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.col < b.col
	})
	out := make([][]object.OID, len(keys))
	for i, tk := range keys {
		out[i] = m.accessTraces[tk]
	}
	return out
}

// TraceCount returns the number of recorded forward traces.
func (m *Manager) TraceCount() int { return len(m.accessTraces) }

// GMRAccessStats returns a copy of the per-GMR access statistics, keyed by
// GMR name.
func (m *Manager) GMRAccessStats() map[string]AccessStats {
	out := make(map[string]AccessStats, len(m.accessStats))
	for name, st := range m.accessStats {
		out[name] = *st
	}
	return out
}

package core

import (
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gomdb/internal/lang"
	"gomdb/internal/object"
	"gomdb/internal/schema"
)

// Deferred rematerialization (the third strategy next to the paper's
// immediate and lazy disciplines): invalidations only mark entries invalid
// and enqueue them on a coalescing queue, so N updates hitting the same
// result between flushes cost one recomputation. Flush drains the queue with
// a bounded worker pool in two phases:
//
//  1. Parallel evaluation. Each worker evaluates its entry on a shadow engine
//     (schema.Engine.Shadow): object reads take the charge-free snapshot path
//     and are recorded in an ordered trace; interpreter CPU is charged live
//     (atomic adds commute, and each item's CPU cost is independent of the
//     schedule). Shadow evaluation refuses mutations, so a function that is
//     not genuinely side-effect free falls back to phase-2 serial
//     recomputation.
//
//  2. Serial apply, in the canonical (GMR name, entry key, column) order.
//     Each item's read trace is replayed through the charged object-read
//     path — producing exactly the physical I/O a serial drain would — then
//     the result is stored and the RRR refreshed.
//
// Because phase 1 charges only schedule-independent CPU and phase 2 performs
// all charged I/O serially in a canonical order, the simulated cost of a
// flush is bit-identical for any worker count (the charge-equivalence
// property the determinism tests assert).

// pendingKey identifies one deferred recomputation: a single result column
// of a single GMR entry.
type pendingKey struct {
	gmr string
	key string // encoded argument combination (entry key)
	col int
}

// pendingItem is the queued work for a pendingKey. triggers is non-nil only
// under the second-chance variant: the objects whose updates invalidated the
// entry, whose retained RRR tuples the flush prunes if the recomputation no
// longer visits them.
type pendingItem struct {
	g        *GMR
	args     []object.Value
	triggers map[object.OID]struct{}
}

// SetRematWorkers bounds the Flush worker pool; n <= 0 selects GOMAXPROCS.
func (m *Manager) SetRematWorkers(n int) { m.rematWorkers = n }

// PendingLen returns the current depth of the deferred recomputation queue.
func (m *Manager) PendingLen() int { return len(m.pending) }

// enqueue adds (or coalesces into) the pending recomputation of column col
// of the entry with key k in g. Caller holds the exclusive Database lock.
func (m *Manager) enqueue(g *GMR, k string, col int, args []object.Value, trigger object.OID) {
	atomic.AddInt64(&m.Stats.DeferredUpdates, 1)
	pk := pendingKey{g.Name, k, col}
	it, ok := m.pending[pk]
	if ok {
		atomic.AddInt64(&m.Stats.CoalescedUpdates, 1)
	} else {
		it = &pendingItem{g: g, args: args}
		if g.SecondChance {
			it.triggers = make(map[object.OID]struct{})
		}
		m.pending[pk] = it
		if d := int64(len(m.pending)); d > atomic.LoadInt64(&m.Stats.QueueHighWater) {
			atomic.StoreInt64(&m.Stats.QueueHighWater, d)
		}
	}
	if it.triggers != nil {
		it.triggers[trigger] = struct{}{}
	}
}

// clearPending retires the pending recomputation of one entry column; called
// from setResult so every path that revalidates a result — flush apply,
// forward force, column revalidation — keeps the queue consistent.
func (m *Manager) clearPending(gmr, k string, col int) {
	if len(m.pending) == 0 {
		return
	}
	delete(m.pending, pendingKey{gmr, k, col})
}

// clearPendingGMR drops all pending work of a GMR being dematerialized.
func (m *Manager) clearPendingGMR(gmr string) {
	for pk := range m.pending {
		if pk.gmr == gmr {
			delete(m.pending, pk)
		}
	}
}

// flushWork is the per-item state threaded through the two flush phases.
type flushWork struct {
	pk pendingKey
	it *pendingItem
	e  *entry

	// Phase-1 outputs.
	fn       *lang.Function
	v        object.Value
	accessed map[object.OID]struct{}
	trace    []object.OID
	err      error
}

// Flush drains the deferred recomputation queue. Caller holds the exclusive
// Database lock (the facade's Flush/Batch take it).
func (m *Manager) Flush() error {
	if len(m.pending) == 0 {
		return nil
	}
	// Canonical drain order: sorted by (GMR, entry key, column) so physical
	// placement, RRR refresh order, and trace events are independent of both
	// enqueue order hash effects and the worker schedule.
	keys := make([]pendingKey, 0, len(m.pending))
	for pk := range m.pending {
		keys = append(keys, pk)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.gmr != b.gmr {
			return a.gmr < b.gmr
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.col < b.col
	})
	work := make([]*flushWork, 0, len(keys))
	for _, pk := range keys {
		it := m.pending[pk]
		g := it.g
		e, ok := g.entries[pk.key]
		if !ok || e.Valid[pk.col] {
			// The entry vanished (forget_object, eviction) or was already
			// revalidated by a force; nothing to recompute.
			delete(m.pending, pk)
			continue
		}
		work = append(work, &flushWork{pk: pk, it: it, e: e})
	}
	if len(work) == 0 {
		return nil
	}
	atomic.AddInt64(&m.Stats.Flushes, 1)

	// Phase 1: parallel shadow evaluation.
	workers := m.rematWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}
	start := time.Now()
	var evalNanos atomic.Int64
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(work) {
					return
				}
				t0 := time.Now()
				m.shadowEval(work[i])
				evalNanos.Add(int64(time.Since(t0)))
			}
		}()
	}
	wg.Wait()
	atomic.AddInt64(&m.Stats.FlushEvalNanos, evalNanos.Load())
	atomic.AddInt64(&m.Stats.FlushWallNanos, int64(time.Since(start)))

	// Phase 2: serial apply in canonical order.
	for _, wk := range work {
		g := wk.it.g
		if wk.err != nil {
			// Shadow evaluation refused (mutation attempt) or failed:
			// recompute serially with full charging; setResult inside
			// retires the pending item.
			if _, err := m.rematerializeWith(g, wk.e, wk.pk.col, wk.it.triggers); err != nil {
				return err
			}
			atomic.AddInt64(&m.Stats.FlushedItems, 1)
			continue
		}
		// Replay the shadow read trace through the charged path: the buffer
		// pool sees the same access sequence a serial evaluation would have
		// produced, so physical I/O is identical to a 1-worker drain.
		for _, oid := range wk.trace {
			if _, err := m.Objs.Get(oid); err != nil {
				return err
			}
		}
		v, err := m.storeComplexResult(wk.fn, wk.v)
		if err != nil {
			return err
		}
		if err := g.setResult(wk.e, wk.pk.col, v); err != nil {
			return err
		}
		atomic.AddInt64(&m.Stats.Rematerializations, 1)
		m.emit("rematerialize", g.Name, wk.fn.Name, object.NilOID)
		for _, oid := range sortedOIDs(wk.accessed) {
			if err := m.addRRR(oid, wk.fn.Name, wk.e.Args); err != nil {
				return err
			}
		}
		for _, trig := range sortedOIDs(wk.it.triggers) {
			if _, ok := wk.accessed[trig]; !ok {
				if err := m.removeRRR(trig, wk.fn.Name, wk.e.Args); err != nil {
					return err
				}
			}
		}
		// The shadow trace is the ordered forward trace (with repeats, which
		// recordTrace collapses) — record it like the serial paths do.
		m.recordTrace(g, wk.pk.key, wk.pk.col, wk.trace)
		atomic.AddInt64(&m.Stats.FlushedItems, 1)
	}
	return nil
}

// shadowEval runs one item's recomputation on a private shadow engine,
// filling the phase-1 outputs. Any error (including ErrShadowMutation from a
// not-actually-side-effect-free body) routes the item to the serial fallback.
func (m *Manager) shadowEval(wk *flushWork) {
	sh := m.En.Shadow()
	fn := m.dispatchShadow(sh, wk.it.g.Funcs[wk.pk.col], wk.e.Args)
	wk.fn = fn
	v, accessed, err := sh.EvalTracked(fn, wk.e.Args)
	if err != nil {
		wk.err = err
		return
	}
	wk.v = v
	wk.accessed = accessed
	wk.trace = sh.ShadowTrace()
}

// dispatchShadow mirrors Manager.dispatch on the shadow read path: the
// dynamic-dispatch receiver read is taken from a snapshot and recorded in
// the trace, so the replay charges it exactly as dispatch would have.
func (m *Manager) dispatchShadow(sh *schema.Engine, fn *lang.Function, args []object.Value) *lang.Function {
	dot := strings.IndexByte(fn.Name, '.')
	if dot < 0 || len(args) == 0 || args[0].Kind != object.KRef {
		return fn
	}
	o, err := m.Objs.GetSnapshot(args[0].R)
	if err != nil {
		return fn
	}
	sh.TraceObject(args[0].R)
	if variant, ok := m.Sch.ResolveOp(o.Type, fn.Name[dot+1:]); ok {
		return variant
	}
	return fn
}

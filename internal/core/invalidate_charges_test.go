package core_test

import (
	"sync/atomic"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

// TestInvalidatePathChargesStable pins the exact simulated charges of the
// multi-tuple lazy invalidation path. The constants were captured before the
// tuple-key hoisting refactor (Tuple.key / RemoveByKey / removeTuple), which
// is supposed to save only un-simulated encoding work: any drift in RRR
// lookups, heap I/O, or CPU charges means the refactor changed the paper's
// cost model and is a regression.
func TestInvalidatePathChargesStable(t *testing.T) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	before := db.Snapshot()
	st0 := db.GMRs.Stats
	// One rotate performs 24 elementary vertex updates -> multi-tuple lazy
	// invalidations through the RRR.
	for i := 0; i < 5; i++ {
		if _, err := db.Call("Cuboid.rotate", gomdb.Ref(g.Cuboids[i]), gomdb.Float(0.3), gomdb.Str("z")); err != nil {
			t.Fatal(err)
		}
	}
	d := db.Clock.Sub(before)
	st := db.GMRs.Stats
	got := map[string]int64{
		"physReads":  d.PhysReads,
		"physWrites": d.PhysWrites,
		"logReads":   d.LogReads,
		"logWrites":  d.LogWrites,
		"cpuOps":     d.CPUOps,
		"rrrLookups": atomic.LoadInt64(&st.RRRLookups) - atomic.LoadInt64(&st0.RRRLookups),
		"inval":      atomic.LoadInt64(&st.Invalidations) - atomic.LoadInt64(&st0.Invalidations),
		"remat":      atomic.LoadInt64(&st.Rematerializations) - atomic.LoadInt64(&st0.Rematerializations),
	}
	want := map[string]int64{
		"physReads":  0,
		"physWrites": 10,
		"logReads":   570,
		"logWrites":  210,
		"cpuOps":     2480,
		"rrrLookups": 20,
		"inval":      40,
		"remat":      0,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s = %d, want %d", k, got[k], w)
		}
	}
}

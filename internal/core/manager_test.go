package core_test

// Error paths and edge cases of the GMR manager.

import (
	"strings"
	"testing"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
	"gomdb/internal/lang"
)

func TestMaterializeValidation(t *testing.T) {
	db, _ := exampleDB(t, false)
	// No functions.
	if _, err := db.Materialize(gomdb.MaterializeOptions{}); err == nil {
		t.Fatal("empty materialize accepted")
	}
	// Unknown function.
	if _, err := db.Materialize(gomdb.MaterializeOptions{Funcs: []string{"Cuboid.nope"}}); err == nil {
		t.Fatal("unknown function accepted")
	}
	// Non-side-effect-free function (translate mutates).
	if _, err := db.Materialize(gomdb.MaterializeOptions{Funcs: []string{"Cuboid.translate"}}); err == nil {
		t.Fatal("updating operation accepted for materialization")
	}
	// Functions with different argument types cannot share a GMR.
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Vertex.dist"},
	}); err == nil {
		t.Fatal("mismatched argument types accepted")
	}
	// Double materialization of the same function.
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Name: "other",
	}); err == nil {
		t.Fatal("double materialization accepted")
	}
	// Duplicate GMR name.
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.weight"}, Name: "<<Cuboid.volume>>",
	}); err == nil {
		t.Fatal("duplicate GMR name accepted")
	}
	// Restriction with wrong arity.
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.weight"},
		Restriction: &gomdb.Restriction{Fn: &lang.Function{
			Name: "p2", Params: []lang.Param{lang.Prm("a", "Cuboid"), lang.Prm("b", "Cuboid")},
		}},
	}); err == nil {
		t.Fatal("restriction arity mismatch accepted")
	}
	// Drop of unknown GMR.
	if err := db.Dematerialize("nope"); err == nil {
		t.Fatal("drop of unknown GMR succeeded")
	}
}

// TestTwoGMRsCoexist: <<volume,weight>> and <<distance>> are maintained
// independently, matching the paper's Figure 3 setup.
func TestTwoGMRsCoexist(t *testing.T) {
	db, g := exampleDB(t, false)
	for i := 0; i < 2; i++ {
		pos := fixtures.NewVertex(db, float64(100+i), 0, 0)
		if _, err := db.New("Robot", gomdb.Str("R"), gomdb.Ref(pos)); err != nil {
			t.Fatal(err)
		}
	}
	vw, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.distance"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vw.Len() != 3 || dist.Len() != 6 {
		t.Fatalf("GMR sizes: %d, %d", vw.Len(), dist.Len())
	}
	// A vertex's X coordinate is relevant to both; Figure 3 shows the RRR
	// holding tuples for volume, weight, and distance per V1.
	c, _ := db.Objects.Get(g.Cuboids[0])
	v1 := c.Attrs[db.Objects.AttrIndex("Cuboid", "V1")].R
	for _, fid := range []string{"Cuboid.volume", "Cuboid.weight", "Cuboid.distance"} {
		if db.GMRs.RRR().FctCount(v1, fid) == 0 {
			t.Errorf("V1 has no RRR tuple for %s", fid)
		}
	}
	// translate invalidates distance but not volume.
	db.GMRs.Stats = core.Stats{}
	if _, err := db.Call("Cuboid.translate", gomdb.Ref(g.Cuboids[0]),
		gomdb.Ref(fixtures.NewVertex(db, 1, 0, 0))); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, db, vw)
	checkConsistent(t, db, dist)
	// Dropping one leaves the other intact.
	if err := db.Dematerialize(vw.Name); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.GMRs.GMRFor("Cuboid.distance"); !ok {
		t.Fatal("distance GMR lost")
	}
	if _, ok := db.GMRs.GMRFor("Cuboid.volume"); ok {
		t.Fatal("volume GMR survived drop")
	}
	checkConsistent(t, db, dist)
}

// TestBlindReferenceCleanup: after an entry vanishes (argument deleted), a
// leftover RRR tuple of a shared object is removed lazily on its next
// access without corrupting anything.
func TestBlindReferenceCleanup(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	iron := g.MaterialO[0]
	// The iron material has RRR tuples for both iron cuboids' weights.
	if db.GMRs.RRR().FctCount(iron, "Cuboid.weight") != 2 {
		t.Fatalf("iron FctCount = %d", db.GMRs.RRR().FctCount(iron, "Cuboid.weight"))
	}
	// Delete one iron cuboid: its entry goes; the material keeps a blind
	// reference (the cuboid's tuple removal happens via forget_object, but
	// the material's tuple for the dead entry stays).
	if err := db.Delete(g.Cuboids[1]); err != nil {
		t.Fatal(err)
	}
	// Touch the material: the blind reference is detected and removed; the
	// surviving entry is maintained correctly.
	if err := db.Set(iron, "SpecWeight", gomdb.Float(8.0)); err != nil {
		t.Fatal(err)
	}
	if n := db.GMRs.RRR().FctCount(iron, "Cuboid.weight"); n != 1 {
		t.Fatalf("after cleanup FctCount = %d, want 1", n)
	}
	wantFloat(t, db, "Cuboid.weight", g.Cuboids[0], 300*8.0)
}

// TestRevalidateSweep: the background revalidation of lazy GMRs.
func TestRevalidateSweep(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Cuboids {
		s := fixtures.NewVertex(db, 2, 1, 1)
		if _, err := db.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s)); err != nil {
			t.Fatal(err)
		}
	}
	if gmr.InvalidCount("Cuboid.volume") != 3 {
		t.Fatalf("invalid = %d", gmr.InvalidCount("Cuboid.volume"))
	}
	if err := db.GMRs.Revalidate(gmr.Name); err != nil {
		t.Fatal(err)
	}
	if gmr.InvalidCount("Cuboid.volume") != 0 {
		t.Fatal("revalidate left invalid entries")
	}
	checkConsistent(t, db, gmr)
	if err := db.GMRs.Revalidate("nope"); err == nil {
		t.Fatal("revalidate of unknown GMR succeeded")
	}
}

// TestRepeatedUpdateSingleInvalidation: the purpose of step 2 of lazy(o) —
// a second update of the same object does not pay the GMR access again.
func TestRepeatedUpdateSingleInvalidation(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	c, _ := db.Objects.Get(g.Cuboids[0])
	v2 := c.Attrs[db.Objects.AttrIndex("Cuboid", "V2")].R
	db.GMRs.Stats = core.Stats{}
	if err := db.Set(v2, "X", gomdb.Float(11)); err != nil {
		t.Fatal(err)
	}
	first := db.GMRs.Stats.Invalidations
	if first != 1 {
		t.Fatalf("first update: %d invalidations", first)
	}
	// Second update of the same object: the RRR tuple is gone and the
	// ObjDepFct mark with it, so the manager is not even invoked.
	if err := db.Set(v2, "X", gomdb.Float(12)); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.Invalidations != first {
		t.Fatalf("repeated update invalidated again: %+v", db.GMRs.Stats)
	}
	if db.GMRs.Stats.RRRLookups != 1 {
		t.Fatalf("repeated update paid an RRR lookup: %+v", db.GMRs.Stats)
	}
}

// TestDescribePlanListsRewrites sanity-checks the rewrite plan description
// used by the gomql shell.
func TestDescribePlanListsRewrites(t *testing.T) {
	db, _ := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	desc := db.GMRs.DescribePlan(gmr)
	for _, want := range []string{"Vertex.set_X", "Cuboid.set_V1", "SchemaDepFct"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("plan description missing %q:\n%s", want, desc)
		}
	}
	if strings.Contains(desc, "Cuboid.set_Value") {
		t.Fatalf("plan rewrites irrelevant operation set_Value:\n%s", desc)
	}
}

// TestCompleteWithMaxEntriesRejected: a complete extension cannot evict.
func TestCompleteWithMaxEntriesRejected(t *testing.T) {
	db, _ := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true, MaxEntries: 5,
	}); err == nil {
		t.Fatal("Complete + MaxEntries accepted")
	}
}

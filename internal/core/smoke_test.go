package core_test

// End-to-end tests of function materialization over the paper's running
// Cuboid example (Figures 1-3). These exercise the full stack: storage,
// object manager, GOMpl evaluation, path extraction, schema rewrite, GMR
// maintenance.

import (
	"math"
	"testing"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
	"gomdb/internal/object"
)

func exampleDB(t *testing.T, encapsulated bool) (*gomdb.Database, *fixtures.Geometry) {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, encapsulated); err != nil {
		t.Fatalf("DefineGeometry: %v", err)
	}
	g, err := fixtures.ExampleGeometry(db)
	if err != nil {
		t.Fatalf("ExampleGeometry: %v", err)
	}
	return db, g
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// wantFloat invokes fn and checks the float result.
func wantFloat(t *testing.T, db *gomdb.Database, fn string, arg gomdb.OID, want float64) {
	t.Helper()
	v, err := db.Call(fn, gomdb.Ref(arg))
	if err != nil {
		t.Fatalf("%s(%v): %v", fn, arg, err)
	}
	f, ok := v.AsFloat()
	if !ok || !approx(f, want) {
		t.Fatalf("%s(%v) = %v, want %g", fn, arg, v, want)
	}
}

// checkConsistent verifies Definition 3.2 for a GMR: every valid entry's
// stored result equals the function recomputed against the current state.
func checkConsistent(t *testing.T, db *gomdb.Database, g *gomdb.GMR) {
	t.Helper()
	fids := g.FuncIDs()
	type row struct {
		args    []gomdb.Value
		results []gomdb.Value
		valid   []bool
	}
	var rows []row
	g.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		r := row{
			args:    append([]gomdb.Value{}, args...),
			results: append([]gomdb.Value{}, results...),
			valid:   append([]bool{}, valid...),
		}
		rows = append(rows, r)
		return true
	})
	for _, r := range rows {
		for i, fid := range fids {
			if !r.valid[i] {
				continue
			}
			fn, err := db.Schema.LookupFunction(fid)
			if err != nil {
				t.Fatalf("lookup %s: %v", fid, err)
			}
			fresh, err := db.Engine.EvalRaw(fn, r.args)
			if err != nil {
				t.Fatalf("recompute %s(%v): %v", fid, r.args, err)
			}
			if !fresh.Equal(r.results[i]) {
				// Complex results are stored as references to result
				// objects; compare canonical expansions instead.
				a := canonValue(db, r.results[i], 0, map[gomdb.OID]bool{})
				b := canonValue(db, fresh, 0, map[gomdb.OID]bool{})
				if a != b {
					t.Fatalf("GMR %s inconsistent: stored %s(%v) = %v, fresh = %v",
						g.Name, fid, r.args, r.results[i], fresh)
				}
			}
		}
	}
}

// TestTable1ExampleGMR reproduces the paper's Section 3.1 example table: the
// extension of <<volume, weight>> over the Figure 2 database.
func TestTable1ExampleGMR(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if gmr.Len() != 3 {
		t.Fatalf("GMR has %d entries, want 3", gmr.Len())
	}
	want := map[gomdb.OID][2]float64{
		g.Cuboids[0]: {300, 2358},
		g.Cuboids[1]: {200, 1572},
		g.Cuboids[2]: {100, 1900},
	}
	gmr.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		w, ok := want[args[0].R]
		if !ok {
			t.Fatalf("unexpected entry for %v", args[0])
		}
		if v, _ := results[0].AsFloat(); !approx(v, w[0]) {
			t.Errorf("volume(%v) = %v, want %g", args[0], results[0], w[0])
		}
		if v, _ := results[1].AsFloat(); !approx(v, w[1]) {
			t.Errorf("weight(%v) = %v, want %g", args[0], results[1], w[1])
		}
		if !valid[0] || !valid[1] {
			t.Errorf("entry for %v not valid", args[0])
		}
		return true
	})
	checkConsistent(t, db, gmr)
}

// TestForwardInterception checks that invoking a materialized function is
// answered from the GMR (Section 3.2's rewrite into a forward query).
func TestForwardInterception(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
	}); err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	before := db.GMRs.Stats.ForwardHits
	wantFloat(t, db, "Cuboid.volume", g.Cuboids[0], 300)
	if db.GMRs.Stats.ForwardHits != before+1 {
		t.Fatalf("forward hit not recorded: %+v", db.GMRs.Stats)
	}
}

// TestImmediateRematerialization updates a relevant vertex coordinate and
// expects the stored volume to be recomputed at once.
func TestImmediateRematerialization(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume"},
		Complete: true,
		Strategy: gomdb.Immediate,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	// Stretch cuboid 1 (10 x 6 x 5) to length 20 by moving V2's X.
	c, err := db.Objects.Get(g.Cuboids[0])
	if err != nil {
		t.Fatal(err)
	}
	v2 := c.Attrs[db.Objects.AttrIndex("Cuboid", "V2")].R
	if err := db.Set(v2, "X", gomdb.Float(20)); err != nil {
		t.Fatalf("set_X: %v", err)
	}
	if gmr.InvalidCount("Cuboid.volume") != 0 {
		t.Fatalf("immediate strategy left %d invalid entries", gmr.InvalidCount("Cuboid.volume"))
	}
	wantFloat(t, db, "Cuboid.volume", g.Cuboids[0], 600)
	checkConsistent(t, db, gmr)
}

// TestLazyInvalidation updates a relevant coordinate under the lazy strategy
// and expects the entry to be marked invalid, then recomputed on demand.
func TestLazyInvalidation(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume"},
		Complete: true,
		Strategy: gomdb.Lazy,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	c, _ := db.Objects.Get(g.Cuboids[0])
	v2 := c.Attrs[db.Objects.AttrIndex("Cuboid", "V2")].R
	if err := db.Set(v2, "X", gomdb.Float(20)); err != nil {
		t.Fatal(err)
	}
	if gmr.InvalidCount("Cuboid.volume") != 1 {
		t.Fatalf("lazy strategy marked %d invalid entries, want 1", gmr.InvalidCount("Cuboid.volume"))
	}
	checkConsistent(t, db, gmr) // invalid entries are exempt from Def 3.2
	// The next forward query rematerializes.
	wantFloat(t, db, "Cuboid.volume", g.Cuboids[0], 600)
	if gmr.InvalidCount("Cuboid.volume") != 0 {
		t.Fatalf("forward query did not rematerialize")
	}
	checkConsistent(t, db, gmr)
}

// TestIrrelevantAttributeNoInvalidation is the Section 5.1 scenario: setting
// Value or Mat must not invalidate volume; setting Mat must invalidate
// weight only.
func TestIrrelevantAttributeNoInvalidation(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Strategy: gomdb.Lazy,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	// id1.set_Value(123.50) — relevant to neither volume nor weight.
	if err := db.Set(g.Cuboids[0], "Value", gomdb.Float(123.50)); err != nil {
		t.Fatal(err)
	}
	if n := gmr.InvalidCount("Cuboid.volume") + gmr.InvalidCount("Cuboid.weight"); n != 0 {
		t.Fatalf("set_Value invalidated %d results, want 0", n)
	}
	// id1.set_Mat(Copper) — invalidates weight but not volume.
	copper, err := db.New("Material", gomdb.Str("Copper"), gomdb.Float(8.96))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Set(g.Cuboids[0], "Mat", gomdb.Ref(copper)); err != nil {
		t.Fatal(err)
	}
	if n := gmr.InvalidCount("Cuboid.volume"); n != 0 {
		t.Fatalf("set_Mat invalidated %d volume results, want 0", n)
	}
	if n := gmr.InvalidCount("Cuboid.weight"); n != 1 {
		t.Fatalf("set_Mat invalidated %d weight results, want 1", n)
	}
	checkConsistent(t, db, gmr)
}

// TestBackwardQuery exercises the backward range query path.
func TestBackwardQuery(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	matches, err := db.GMRs.Backward("Cuboid.volume", 150, 400)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	if len(matches) != 2 {
		t.Fatalf("backward query returned %d matches, want 2 (volumes 200, 300)", len(matches))
	}
	got := map[gomdb.OID]bool{}
	for _, m := range matches {
		got[m.Args[0].R] = true
	}
	if !got[g.Cuboids[0]] || !got[g.Cuboids[1]] {
		t.Fatalf("backward query returned wrong cuboids: %v", matches)
	}
}

// TestScaleInvalidations verifies the Section 5.3 motivation: one scale of a
// non-encapsulated cuboid triggers 12 invalidations of a materialized volume
// (4 relevant vertices x 3 coordinates), a rotation likewise.
func TestScaleInvalidations(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume"},
		Complete: true,
		Strategy: gomdb.Immediate,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.GMRs.Stats = core.Stats{}
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[0]),
		gomdb.Ref(fixtures.NewVertex(db, 2, 1, 1))); err != nil {
		t.Fatalf("scale: %v", err)
	}
	if db.GMRs.Stats.Invalidations != 12 {
		t.Fatalf("scale triggered %d invalidations, want 12", db.GMRs.Stats.Invalidations)
	}
	wantFloat(t, db, "Cuboid.volume", g.Cuboids[0], 600)
	checkConsistent(t, db, gmr)

	db.GMRs.Stats = core.Stats{}
	if _, err := db.Call("Cuboid.rotate", gomdb.Ref(g.Cuboids[0]),
		gomdb.Float(math.Pi/2), gomdb.Str("z")); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if db.GMRs.Stats.Invalidations != 12 {
		t.Fatalf("rotate triggered %d invalidations, want 12", db.GMRs.Stats.Invalidations)
	}
	checkConsistent(t, db, gmr)
}

// TestInfoHiding verifies Section 5.3 over the strictly encapsulated Cuboid:
// scale triggers exactly one invalidation, rotate and translate none, and
// "innocent" vertex-sharing types pay nothing because Vertex.set_X carries
// no hook at all.
func TestInfoHiding(t *testing.T) {
	db, g := exampleDB(t, true)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume"},
		Complete: true,
		Strategy: gomdb.Immediate,
		Mode:     gomdb.ModeInfoHiding,
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.Engine.Hooks.Installed("Vertex", "set_X") {
		t.Fatalf("information hiding left a hook on Vertex.set_X")
	}
	if !db.Engine.Hooks.Installed("Cuboid", "scale") {
		t.Fatalf("information hiding did not rewrite Cuboid.scale")
	}
	if db.Engine.Hooks.Installed("Cuboid", "rotate") {
		t.Fatalf("rotate was rewritten despite an empty InvalidatedFct")
	}

	db.GMRs.Stats = core.Stats{}
	if _, err := db.Call("Cuboid.rotate", gomdb.Ref(g.Cuboids[0]),
		gomdb.Float(math.Pi/4), gomdb.Str("z")); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if db.GMRs.Stats.Invalidations != 0 || db.GMRs.Stats.RRRLookups != 0 {
		t.Fatalf("rotate under info hiding: %+v, want no invalidation work", db.GMRs.Stats)
	}
	checkConsistent(t, db, gmr)

	db.GMRs.Stats = core.Stats{}
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[0]),
		gomdb.Ref(fixtures.NewVertex(db, 2, 1, 1))); err != nil {
		t.Fatalf("scale: %v", err)
	}
	if db.GMRs.Stats.Invalidations != 1 {
		t.Fatalf("scale under info hiding triggered %d invalidations, want 1", db.GMRs.Stats.Invalidations)
	}
	checkConsistent(t, db, gmr)
}

// TestMarkingSeparatesInnocentObjects is the Section 5.2 scenario: updating
// a Vertex that no Cuboid references must not invoke the GMR manager at all
// under ModeObjDep (the in-object ObjDepFct check blocks it), while under
// ModeSchemaDep it costs an RRR lookup.
func TestMarkingSeparatesInnocentObjects(t *testing.T) {
	for _, mode := range []core.HookMode{core.ModeSchemaDep, core.ModeObjDep} {
		db, _ := exampleDB(t, false)
		if _, err := db.Materialize(gomdb.MaterializeOptions{
			Funcs:    []string{"Cuboid.volume"},
			Complete: true,
			Mode:     mode,
		}); err != nil {
			t.Fatal(err)
		}
		innocent := fixtures.NewVertex(db, 1, 2, 3) // not referenced by any cuboid
		db.GMRs.Stats = core.Stats{}
		if err := db.Set(innocent, "X", gomdb.Float(2.5)); err != nil {
			t.Fatal(err)
		}
		lookups := db.GMRs.Stats.RRRLookups
		switch mode {
		case core.ModeSchemaDep:
			if lookups != 1 {
				t.Errorf("mode %v: %d RRR lookups for innocent vertex, want 1", mode, lookups)
			}
		case core.ModeObjDep:
			if lookups != 0 {
				t.Errorf("mode %v: %d RRR lookups for innocent vertex, want 0", mode, lookups)
			}
		}
		if db.GMRs.Stats.Invalidations != 0 {
			t.Errorf("mode %v: innocent update invalidated %d results", mode, db.GMRs.Stats.Invalidations)
		}
	}
}

// TestCreateDelete exercises new_object and forget_object (Section 4.2).
func TestCreateDelete(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	iron := g.MaterialO[0]
	oid := fixtures.NewCuboid(db, 99, 0, 0, 0, 2, 3, 4, iron, 1.0)
	if gmr.Len() != 4 {
		t.Fatalf("after create: %d entries, want 4", gmr.Len())
	}
	wantFloat(t, db, "Cuboid.volume", oid, 24)
	checkConsistent(t, db, gmr)

	if err := db.Delete(oid); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if gmr.Len() != 3 {
		t.Fatalf("after delete: %d entries, want 3", gmr.Len())
	}
	checkConsistent(t, db, gmr)
}

// TestDematerialize drops the GMR and verifies the schema rewrite is fully
// undone and the original functions still evaluate.
func TestDematerialize(t *testing.T) {
	db, g := exampleDB(t, false)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.GMRs.InstalledHookCount() == 0 {
		t.Fatalf("no hooks installed by materialization")
	}
	if err := db.Dematerialize(gmr.Name); err != nil {
		t.Fatalf("Dematerialize: %v", err)
	}
	if n := db.GMRs.InstalledHookCount(); n != 0 {
		t.Fatalf("%d hooks left after drop", n)
	}
	if db.GMRs.RRR().Len() != 0 {
		t.Fatalf("%d RRR tuples left after drop", db.GMRs.RRR().Len())
	}
	// ObjDepFct marks must be gone too.
	o, _ := db.Objects.Get(g.Cuboids[0])
	if len(o.DepFcts) != 0 {
		t.Fatalf("ObjDepFct not cleaned: %v", o.DepFcts)
	}
	wantFloat(t, db, "Cuboid.volume", g.Cuboids[0], 300)
}

// TestMultiArgumentDistance materializes the two-argument distance function
// (Cuboid x Robot) and checks invalidation through either argument.
func TestMultiArgumentDistance(t *testing.T) {
	db, g := exampleDB(t, false)
	for i := 0; i < 2; i++ {
		pos := fixtures.NewVertex(db, float64(100+50*i), 0, 0)
		if _, err := db.New("Robot", gomdb.Str("R"), gomdb.Ref(pos)); err != nil {
			t.Fatal(err)
		}
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.distance"},
		Complete: true,
		Strategy: gomdb.Immediate,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	robots := db.Extension("Robot")
	if gmr.Len() != 3*len(robots) {
		t.Fatalf("distance GMR has %d entries, want %d", gmr.Len(), 3*len(robots))
	}
	checkConsistent(t, db, gmr)
	// Move a robot; its column of the cross product must rematerialize.
	r, _ := db.Objects.Get(robots[0])
	pos := r.Attrs[db.Objects.AttrIndex("Robot", "Pos")].R
	if err := db.Set(pos, "X", gomdb.Float(500)); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, db, gmr)
	// Translate a cuboid; its row must rematerialize (translate moves V1).
	if _, err := db.Call("Cuboid.translate", gomdb.Ref(g.Cuboids[1]),
		gomdb.Ref(fixtures.NewVertex(db, 7, 0, 0))); err != nil {
		t.Fatal(err)
	}
	checkConsistent(t, db, gmr)
}

// TestObjDepFctMarking checks the Figure 6 state: a vertex of a cuboid
// involved in <<volume, weight>> carries both function ids, the material
// only weight.
func TestObjDepFctMarking(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	c, _ := db.Objects.Get(g.Cuboids[0])
	v1 := c.Attrs[db.Objects.AttrIndex("Cuboid", "V1")].R
	vo, _ := db.Objects.Get(v1)
	if !vo.HasDepFct("Cuboid.volume") || !vo.HasDepFct("Cuboid.weight") {
		t.Fatalf("V1 ObjDepFct = %v, want volume and weight", vo.DepFcts)
	}
	mat, _ := db.Objects.Get(g.MaterialO[0])
	if mat.HasDepFct("Cuboid.volume") {
		t.Fatalf("material marked with volume: %v", mat.DepFcts)
	}
	if !mat.HasDepFct("Cuboid.weight") {
		t.Fatalf("material not marked with weight: %v", mat.DepFcts)
	}
	// V3 is not used by volume or weight.
	v3 := c.Attrs[db.Objects.AttrIndex("Cuboid", "V3")].R
	v3o, _ := db.Objects.Get(v3)
	if len(v3o.DepFcts) != 0 {
		t.Fatalf("V3 should be unmarked, got %v", v3o.DepFcts)
	}
}

// canonValue renders a value with object references expanded (collections
// and tuples alike) so a stored result object and a fresh transient value of
// the same shape canonicalize identically. Cycles and depth are bounded.
func canonValue(db *gomdb.Database, v gomdb.Value, depth int, seen map[gomdb.OID]bool) string {
	if depth > 6 {
		return v.String()
	}
	switch v.Kind {
	case object.KRef:
		if v.R == object.NilOID || seen[v.R] {
			return v.String()
		}
		o, err := db.Objects.Get(v.R)
		if err != nil {
			return v.String()
		}
		seen[v.R] = true
		defer delete(seen, v.R)
		// Dereferencing does not consume depth: a stored result object and
		// a transient value differ by exactly this indirection.
		if len(o.Elems) > 0 || db.Schema.Reg.Lookup(o.Type) != nil && db.Schema.Reg.Lookup(o.Type).Kind != object.TupleType {
			return canonValue(db, object.Value{Kind: object.KSet, Elems: o.Elems}, depth, seen)
		}
		return canonValue(db, object.Value{Kind: object.KTuple, TupleType: o.Type, Elems: o.Attrs}, depth, seen)
	case object.KSet:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = canonValue(db, e, depth+1, seen)
		}
		sortStrings(parts)
		return "{" + joinStrings(parts) + "}"
	case object.KList:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = canonValue(db, e, depth+1, seen)
		}
		return "<" + joinStrings(parts) + ">"
	case object.KTuple:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = canonValue(db, e, depth+1, seen)
		}
		return v.TupleType + "[" + joinStrings(parts) + "]"
	default:
		return v.String()
	}
}

var _ = object.NilOID

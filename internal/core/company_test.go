package core_test

// Tests over the Section 7.2 company application: materialized ranking
// (scalar results over a deep path), materialized matrix (complex result
// stored as objects), and the compensating action for project insertion.

import (
	"testing"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

func companyDB(t *testing.T, cfg fixtures.CompanyConfig) (*gomdb.Database, *fixtures.Company) {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineCompany(db); err != nil {
		t.Fatalf("DefineCompany: %v", err)
	}
	c, err := fixtures.PopulateCompany(db, cfg)
	if err != nil {
		t.Fatalf("PopulateCompany: %v", err)
	}
	return db, c
}

func smallCompany() fixtures.CompanyConfig {
	return fixtures.CompanyConfig{
		Departments: 3, EmpsPerDep: 5, Projects: 10, JobsPerEmp: 4, ProgsPerProj: 3, Seed: 42,
	}
}

// TestRankingMaterialization materializes Employee.ranking and verifies
// consistency under promotions.
func TestRankingMaterialization(t *testing.T) {
	db, c := companyDB(t, smallCompany())
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Employee.ranking"},
		Complete: true,
		Strategy: gomdb.Immediate,
		Mode:     gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatalf("Materialize ranking: %v", err)
	}
	if gmr.Len() != len(c.Employees) {
		t.Fatalf("ranking GMR has %d entries, want %d", gmr.Len(), len(c.Employees))
	}
	checkConsistent(t, db, gmr)
	for i := 0; i < 5; i++ {
		if err := c.Promote(); err != nil {
			t.Fatalf("promote: %v", err)
		}
		checkConsistent(t, db, gmr)
	}
	// A promotion must invalidate exactly the promoted employee's ranking.
	db.GMRs.Stats = core.Stats{}
	if err := c.Promote(); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.Invalidations != 1 {
		t.Fatalf("promotion invalidated %d results, want 1", db.GMRs.Stats.Invalidations)
	}
}

// TestRankingBackward runs the Figure 13 backward query shape against the
// materialized ranking.
func TestRankingBackward(t *testing.T) {
	db, c := companyDB(t, smallCompany())
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Employee.ranking"},
		Complete: true,
		Strategy: gomdb.Lazy,
		Mode:     gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	// Invalidate a few rankings, then a backward query must revalidate.
	for i := 0; i < 3; i++ {
		if err := c.Promote(); err != nil {
			t.Fatal(err)
		}
	}
	matches, err := db.GMRs.Backward("Employee.ranking", 0, 1e9)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	// Every employee's ranking is >= 0 given the fixture's value ranges
	// except possibly strongly negative project statuses; just check that
	// the answer agrees with brute force.
	count := 0
	for _, e := range c.Employees {
		fn, _ := db.Schema.LookupFunction("Employee.ranking")
		v, err := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(e)})
		if err != nil {
			t.Fatal(err)
		}
		if f, _ := v.AsFloat(); f >= 0 && f <= 1e9 {
			count++
		}
	}
	if len(matches) != count {
		t.Fatalf("backward ranking query returned %d rows, brute force says %d", len(matches), count)
	}
}

// TestMatrixMaterialization materializes the complex-result matrix function
// and verifies the result object structure and invalidation via the
// encapsulated add_project operation.
func TestMatrixMaterialization(t *testing.T) {
	db, c := companyDB(t, smallCompany())
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Company.matrix"},
		Complete: true,
		Strategy: gomdb.Immediate,
		Mode:     gomdb.ModeInfoHiding,
	})
	if err != nil {
		t.Fatalf("Materialize matrix: %v", err)
	}
	if gmr.Len() != 1 {
		t.Fatalf("matrix GMR has %d entries, want 1", gmr.Len())
	}
	v, err := db.Call("Company.matrix", gomdb.Ref(c.Comp))
	if err != nil {
		t.Fatalf("matrix call: %v", err)
	}
	if v.Kind != gomdb.Ref(0).Kind {
		t.Fatalf("matrix result is %v, want an object reference", v.Kind)
	}
	lines, err := db.Engine.ReadElems(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatalf("matrix has no lines")
	}
	// Every line's Emps set must be non-empty and each employee must be in
	// the department and a programmer of the project.
	for _, l := range lines {
		dep, _ := db.Engine.ReadAttr(l, "Dep")
		proj, _ := db.Engine.ReadAttr(l, "Proj")
		emps, _ := db.Engine.ReadAttr(l, "Emps")
		members, err := db.Engine.ReadElems(emps)
		if err != nil {
			t.Fatal(err)
		}
		if len(members) == 0 {
			t.Fatalf("matrix line with empty Emps")
		}
		depEmpsRef, _ := db.Engine.ReadAttr(dep, "Emps")
		depEmps, _ := db.Engine.ReadElems(depEmpsRef)
		progsRef, _ := db.Engine.ReadAttr(proj, "Programmers")
		progs, _ := db.Engine.ReadElems(progsRef)
		inSet := func(set []gomdb.Value, e gomdb.Value) bool {
			for _, x := range set {
				if x.Equal(e) {
					return true
				}
			}
			return false
		}
		for _, e := range members {
			if !inSet(depEmps, e) || !inSet(progs, e) {
				t.Fatalf("matrix line contains employee %v not in dep/project", e)
			}
		}
	}

	// add_project through the public op must invalidate + rematerialize.
	db.GMRs.Stats = core.Stats{}
	p, err := c.NewProjectWithProgrammers(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Call("Company.add_project", gomdb.Ref(c.Comp), gomdb.Ref(p)); err != nil {
		t.Fatalf("add_project: %v", err)
	}
	if db.GMRs.Stats.Invalidations != 1 {
		t.Fatalf("add_project triggered %d invalidations, want 1", db.GMRs.Stats.Invalidations)
	}
	checkConsistent(t, db, gmr)
}

// TestMatrixCompensation registers the Figure 15 compensating action and
// verifies that project insertion updates the matrix without a full
// recomputation, producing the same matrix a recomputation would.
func TestMatrixCompensation(t *testing.T) {
	db, c := companyDB(t, smallCompany())
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Company.matrix"},
		Complete: true,
		Strategy: gomdb.Immediate,
		Mode:     gomdb.ModeInfoHiding,
	})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := db.Schema.LookupFunction("Company.comp_add_project")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.GMRs.DefineCompensation("Company", "add_project", "Company.matrix", comp); err != nil {
		t.Fatalf("DefineCompensation: %v", err)
	}
	db.GMRs.Stats = core.Stats{}
	p, err := c.NewProjectWithProgrammers(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Call("Company.add_project", gomdb.Ref(c.Comp), gomdb.Ref(p)); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.Stats.Compensations != 1 {
		t.Fatalf("add_project ran %d compensations, want 1 (stats %+v)", db.GMRs.Stats.Compensations, db.GMRs.Stats)
	}
	if db.GMRs.Stats.Rematerializations != 0 {
		t.Fatalf("compensation still caused %d rematerializations", db.GMRs.Stats.Rematerializations)
	}
	// The compensated matrix must equal a fresh recomputation, compared as
	// sets of (DepNo, PName, sorted EmpNos).
	var stored gomdb.Value
	gmr.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		if !valid[0] {
			t.Fatalf("matrix entry invalid after compensation")
		}
		stored = results[0]
		return false
	})
	fn, _ := db.Schema.LookupFunction("Company.matrix")
	fresh, err := db.Engine.EvalRaw(fn, []gomdb.Value{gomdb.Ref(c.Comp)})
	if err != nil {
		t.Fatal(err)
	}
	if canonMatrix(t, db, stored) != canonMatrix(t, db, fresh) {
		t.Fatalf("compensated matrix differs from recomputation:\n%s\nvs\n%s",
			canonMatrix(t, db, stored), canonMatrix(t, db, fresh))
	}
}

// TestCompensationRejectsNonArgumentType checks the Definition 5.4 rule with
// the paper's example: a compensating action for total-volume-like functions
// may not be declared on an operation of a non-argument type.
func TestCompensationRejectsNonArgumentType(t *testing.T) {
	db, _ := companyDB(t, smallCompany())
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Employee.ranking"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	comp := &gomdb.Function{
		Name:           "bogus",
		Params:         []gomdb.Param{{Name: "self", Type: "Job"}, {Name: "old", Type: "float"}},
		ResultType:     "float",
		SideEffectFree: true,
	}
	err := db.GMRs.DefineCompensation("Job", "set_Good", "Employee.ranking", comp)
	if err == nil {
		t.Fatalf("compensating action on non-argument type Job was accepted")
	}
}

// canonMatrix renders a matrix value (ref to MatrixSet or transient set) as
// a canonical string for comparison.
func canonMatrix(t *testing.T, db *gomdb.Database, v gomdb.Value) string {
	t.Helper()
	lines, err := db.Engine.ReadElems(v)
	if err != nil {
		t.Fatal(err)
	}
	var rows []string
	for _, l := range lines {
		dep, _ := db.Engine.ReadAttr(l, "Dep")
		depNo, _ := db.Engine.ReadAttr(dep, "DepNo")
		proj, _ := db.Engine.ReadAttr(l, "Proj")
		pname, _ := db.Engine.ReadAttr(proj, "PName")
		emps, _ := db.Engine.ReadAttr(l, "Emps")
		members, _ := db.Engine.ReadElems(emps)
		var nos []string
		for _, e := range members {
			no, _ := db.Engine.ReadAttr(e, "EmpNo")
			nos = append(nos, no.String())
		}
		sortStrings(nos)
		rows = append(rows, depNo.String()+"/"+pname.S+"/"+joinStrings(nos))
	}
	sortStrings(rows)
	return joinStrings(rows)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func joinStrings(s []string) string {
	out := ""
	for i, x := range s {
		if i > 0 {
			out += ";"
		}
		out += x
	}
	return out
}

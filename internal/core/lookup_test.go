package core_test

// Retrieval API coverage: All, Sum, FullRange, forward errors.

import (
	"math"
	"testing"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

func TestAllAndSum(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	all, err := db.GMRs.All("Cuboid.weight")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("All returned %d rows", len(all))
	}
	sum, err := db.GMRs.Sum("Cuboid.weight", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-(2358+1572+1900)) > 1e-6 {
		t.Fatalf("Sum = %g", sum)
	}
	// Sum over a subset (the paper's MyValuableCuboids forward aggregate).
	sum, err = db.GMRs.Sum("Cuboid.weight", []gomdb.OID{g.Cuboids[0], g.Cuboids[2]})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-(2358+1900)) > 1e-6 {
		t.Fatalf("subset Sum = %g", sum)
	}
	// All must revalidate lazily invalidated entries first.
	s := fixtures.NewVertex(db, 2, 1, 1)
	if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[0]), gomdb.Ref(s)); err != nil {
		t.Fatal(err)
	}
	sum2, err := db.GMRs.Sum("Cuboid.weight", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum2-(2*2358+1572+1900)) > 1e-6 {
		t.Fatalf("Sum after doubling length = %g", sum2)
	}
	// FullRange backward sweep returns everything.
	matches, err := db.GMRs.Backward("Cuboid.weight", core.FullRange[0], core.FullRange[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("FullRange backward returned %d", len(matches))
	}
}

func TestLookupErrors(t *testing.T) {
	db, g := exampleDB(t, false)
	if _, err := db.GMRs.Forward("Cuboid.volume", []gomdb.Value{gomdb.Ref(g.Cuboids[0])}); err == nil {
		t.Fatal("forward on unmaterialized function succeeded")
	}
	if _, err := db.GMRs.Backward("Cuboid.volume", 0, 1); err == nil {
		t.Fatal("backward on unmaterialized function succeeded")
	}
	if _, err := db.GMRs.All("Cuboid.volume"); err == nil {
		t.Fatal("All on unmaterialized function succeeded")
	}
	if _, _, err := db.GMRs.BackwardAny("Cuboid.volume", 0, 1); err == nil {
		t.Fatal("BackwardAny on unmaterialized function succeeded")
	}
	if _, err := db.GMRs.Sum("Cuboid.volume", nil); err == nil {
		t.Fatal("Sum on unmaterialized function succeeded")
	}
	if _, err := db.GMRs.Retrieve("nope", nil); err == nil {
		t.Fatal("Retrieve on unknown GMR succeeded")
	}
	// Wrong spec arity.
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GMRs.Retrieve("<<Cuboid.volume>>", []gomdb.FieldSpec{gomdb.AnySpec()}); err == nil {
		t.Fatal("wrong Retrieve arity accepted")
	}
}

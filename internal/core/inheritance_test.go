package core_test

// Materialization under single inheritance with substitutability
// (Section 2): the extension of the argument type includes subtype
// instances, the materialized invocation dispatches dynamically, and
// invalidation must track the dependencies of subtype overrides.

import (
	"testing"

	"gomdb"
	"gomdb/internal/lang"
)

// inheritanceDB defines Base [X] with f = 2*X and Sub <: Base [Y] with the
// override f = 2*X + Y.
func inheritanceDB(t *testing.T) (*gomdb.Database, []gomdb.OID, []gomdb.OID) {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	db.MustDefineType(gomdb.NewTupleType("Base",
		gomdb.PubAttr("X", "float")), "f")
	sub := gomdb.NewTupleType("Sub", gomdb.PubAttr("Y", "float"))
	sub.Super = "Base"
	db.MustDefineType(sub, "f")
	if err := db.DefineOpSrc("Base", `define f: float is
		return 2.0 * self.X
	end`, true); err != nil {
		t.Fatal(err)
	}
	// The override reads an attribute the supertype body never touches.
	f2 := &gomdb.Function{
		Name:           "Sub.f",
		Params:         []gomdb.Param{lang.Prm("self", "Sub")},
		ResultType:     "float",
		SideEffectFree: true,
		Body: []gomdb.Stmt{
			lang.Ret(lang.Add(lang.Mul(lang.F(2), lang.A(lang.Self(), "X")), lang.A(lang.Self(), "Y"))),
		},
	}
	db.MustDefineOp("Sub", "f", f2)

	var bases, subs []gomdb.OID
	for i := 1; i <= 3; i++ {
		bases = append(bases, db.MustNew("Base", gomdb.Float(float64(i))))
	}
	for i := 1; i <= 3; i++ {
		subs = append(subs, db.MustNew("Sub", gomdb.Float(float64(i)), gomdb.Float(100)))
	}
	return db, bases, subs
}

func TestMaterializeWithOverrides(t *testing.T) {
	db, bases, subs := inheritanceDB(t)
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Base.f"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Extension = 3 Base + 3 Sub instances (substitutability).
	if gmr.Len() != 6 {
		t.Fatalf("GMR has %d entries, want 6", gmr.Len())
	}
	// Entries for Sub instances must hold the OVERRIDE's results.
	wantFloat(t, db, "Base.f", bases[0], 2)
	wantFloat(t, db, "Base.f", subs[0], 102)
	// Forward calls on Sub instances are answered from the GMR: the
	// interceptor catches the dynamically dispatched override.
	db.GMRs.Stats.ForwardHits = 0
	wantFloat(t, db, "Sub.f", subs[1], 104)
	if db.GMRs.Stats.ForwardHits != 1 {
		t.Fatalf("override invocation missed the GMR: %+v", db.GMRs.Stats)
	}
	// An update to the override-only attribute Y must invalidate the Sub
	// entry: the hook planner analyzed the override's paths.
	if err := db.Set(subs[0], "Y", gomdb.Float(1000)); err != nil {
		t.Fatal(err)
	}
	wantFloat(t, db, "Base.f", subs[0], 1002)
	checkConsistentDispatch(t, db, gmr)
	// An update to X invalidates both kinds.
	if err := db.Set(bases[1], "X", gomdb.Float(50)); err != nil {
		t.Fatal(err)
	}
	if err := db.Set(subs[1], "X", gomdb.Float(50)); err != nil {
		t.Fatal(err)
	}
	wantFloat(t, db, "Base.f", bases[1], 100)
	wantFloat(t, db, "Base.f", subs[1], 200)
	checkConsistentDispatch(t, db, gmr)
	// Backward query sees dispatched results.
	matches, err := db.GMRs.Backward("Base.f", 101, 1003)
	if err != nil {
		t.Fatal(err)
	}
	want := map[gomdb.OID]bool{subs[0]: true, subs[1]: true, subs[2]: true}
	if len(matches) != 3 {
		t.Fatalf("backward over override results: %d matches", len(matches))
	}
	for _, m := range matches {
		if !want[m.Args[0].R] {
			t.Fatalf("unexpected match %v", m.Args[0])
		}
	}
	// Dropping the GMR removes the override registration too.
	if err := db.Dematerialize(gmr.Name); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.GMRs.GMRFor("Sub.f"); ok {
		t.Fatal("override mapping survived drop")
	}
	wantFloat(t, db, "Sub.f", subs[2], 106)
}

// TestMaterializeOverrideConflict: the override may not be independently
// materialized in a second GMR.
func TestMaterializeOverrideConflict(t *testing.T) {
	db, _, _ := inheritanceDB(t)
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Sub.f"}, Complete: true, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Base.f"}, Complete: true, Mode: gomdb.ModeObjDep,
	}); err == nil {
		t.Fatal("materializing Base.f accepted while its override is materialized elsewhere")
	}
}

// checkConsistentDispatch verifies Definition 3.2 with dynamic dispatch:
// each entry compares against the override its receiver would execute.
func checkConsistentDispatch(t *testing.T, db *gomdb.Database, g *gomdb.GMR) {
	t.Helper()
	g.Entries(func(args, results []gomdb.Value, valid []bool) bool {
		for i, fid := range g.FuncIDs() {
			if !valid[i] {
				continue
			}
			o, err := db.Objects.Get(args[0].R)
			if err != nil {
				t.Fatal(err)
			}
			opName := fid[len("Base."):]
			fn, ok := db.Schema.ResolveOp(o.Type, opName)
			if !ok {
				t.Fatalf("no dispatch target for %s on %s", fid, o.Type)
			}
			fresh, err := db.Engine.EvalRaw(fn, args)
			if err != nil {
				t.Fatal(err)
			}
			if !valuesClose(fresh, results[i]) {
				t.Fatalf("dispatched consistency violated for %v: stored %v, fresh %v", args[0], results[i], fresh)
			}
		}
		return true
	})
}

package cluster

import (
	"reflect"
	"testing"

	"gomdb/internal/object"
)

func oids(ids ...uint64) []object.OID {
	out := make([]object.OID, len(ids))
	for i, id := range ids {
		out[i] = object.OID(id)
	}
	return out
}

func TestComputeChainsCoAccessedObjects(t *testing.T) {
	// Two traces sharing structure: 1-2-3 is read together twice, 4-5 once.
	// Object 9 is live but never traced (cold); 7 is traced alone.
	live := oids(1, 2, 3, 4, 5, 7, 9)
	traces := [][]object.OID{
		oids(1, 2, 3),
		oids(1, 2, 3),
		oids(4, 5),
		oids(7),
	}
	p := Compute(traces, live)
	if got, want := p.Order, oids(1, 2, 3, 4, 5, 7, 9); !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if p.HotObjects != 6 || p.Chains != 2 || p.Traces != 4 {
		t.Fatalf("stats = %+v", p)
	}
	// The hottest chain (1-2-3, heat 6) leads; the cold object is last.
	if p.Order[0] != 1 || p.Order[len(p.Order)-1] != 9 {
		t.Fatalf("tiering wrong: %v", p.Order)
	}
}

func TestComputeEveryLiveObjectExactlyOnce(t *testing.T) {
	live := oids(1, 2, 3, 4, 5, 6, 7, 8)
	traces := [][]object.OID{
		oids(3, 1, 4, 1, 5), // repeats within a trace
		oids(2, 6, 2),
		oids(8, 3),
		oids(42, 3), // 42 is dead — filtered out
	}
	p := Compute(traces, live)
	if len(p.Order) != len(live) {
		t.Fatalf("order has %d entries, want %d", len(p.Order), len(live))
	}
	seen := make(map[object.OID]bool)
	for _, oid := range p.Order {
		if seen[oid] {
			t.Fatalf("object %v placed twice: %v", oid, p.Order)
		}
		seen[oid] = true
	}
	for _, oid := range live {
		if !seen[oid] {
			t.Fatalf("live object %v missing from order", oid)
		}
	}
}

func TestComputeChainsNeverFork(t *testing.T) {
	// Object 2 co-accessed with 1, 3, and 4: only its two heaviest
	// neighbours may flank it.
	traces := [][]object.OID{
		oids(1, 2), oids(1, 2), oids(1, 2),
		oids(2, 3), oids(2, 3),
		oids(2, 4),
	}
	live := oids(1, 2, 3, 4)
	p := Compute(traces, live)
	// Heaviest edges: (1,2) w3 then (2,3) w2 form the chain 1-2-3; edge
	// (2,4) is rejected (2 is full), so 4 stays a singleton.
	if got, want := p.Order, oids(1, 2, 3, 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if p.Chains != 1 {
		t.Fatalf("chains = %d, want 1", p.Chains)
	}
}

func TestComputeDeterministic(t *testing.T) {
	live := oids(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)
	traces := [][]object.OID{
		oids(5, 9, 1), oids(2, 7), oids(7, 2), oids(10, 11, 12),
		oids(3, 8, 4), oids(12, 10), oids(6, 1, 5),
	}
	first := Compute(traces, live)
	for i := 0; i < 50; i++ {
		again := Compute(traces, live)
		if !reflect.DeepEqual(first.Order, again.Order) {
			t.Fatalf("run %d differs:\n%v\n%v", i, first.Order, again.Order)
		}
	}
}

func TestComputeEmptyTraces(t *testing.T) {
	live := oids(4, 1, 9) // Compute preserves the given cold order
	p := Compute(nil, live)
	if !reflect.DeepEqual(p.Order, live) {
		t.Fatalf("order = %v, want %v", p.Order, live)
	}
	if p.HotObjects != 0 || p.Chains != 0 || p.Edges != 0 || p.Traces != 0 {
		t.Fatalf("stats = %+v", p)
	}
}

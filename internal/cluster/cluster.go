// Package cluster computes trace-driven object placement orders. The input
// is the set of forward traces the GMR manager recorded — for every
// materialized result, the ordered sequence of objects its computation read —
// and the output is a total order over the live objects that co-locates what
// materialized functions read together. Feeding the order to
// object.Manager.Relocate turns each function's read pattern into (mostly)
// sequential page access, which is where the PhysReads drop in the cluster
// benchmark comes from.
//
// The algorithm is greedy sequence clustering over co-access edges, the
// classic heuristic from the OODB clustering literature:
//
//  1. Every adjacent pair in a trace contributes one co-access edge between
//     the two objects (unordered; weights accumulate across traces).
//  2. Objects co-accessed with many distinct partners are hubs — a shared
//     material, a project a dozen job histories reference. A chain can give a
//     hub at most two of its neighbours and would drag it away from the rest,
//     so hubs are excluded from chain merging and packed together at the
//     front of the placement instead: a dense always-resident region, which
//     is exactly what the original densely-populated layout gave them.
//  3. Remaining edges are considered by descending weight; an edge joins two
//     chains end-to-end when both endpoints are still chain ends — so every
//     object keeps at most two trace neighbours, and chains never fork.
//  4. Hubs are emitted first (hottest first), then chains hottest first
//     (total access count), and cold objects — live but never traced —
//     follow in ascending OID order.
//
// Everything is deterministic: ties break on OIDs, never on map iteration
// order. The pass is pure computation over in-memory bookkeeping and charges
// nothing; the relocation it drives performs (and charges) the physical I/O.
package cluster

import (
	"sort"

	"gomdb/internal/object"
)

// Plan holds the placement order computed by Compute plus the statistics the
// recluster report surfaces.
type Plan struct {
	// Order names every live object exactly once, hottest chains first,
	// cold objects last.
	Order []object.OID
	// HotObjects counts objects that appeared in at least one trace.
	HotObjects int
	// Hubs counts objects excluded from chain merging for being co-accessed
	// with hubMinPartners or more distinct partners; they lead the placement.
	Hubs int
	// Chains counts the affinity chains of length >= 2 that survived the
	// greedy merge.
	Chains int
	// Edges counts the distinct co-access pairs observed.
	Edges int
	// Traces counts the traces that contributed (after filtering to live
	// objects, traces shorter than one object contribute nothing).
	Traces int
}

// edge is an unordered co-access pair (a < b) with an accumulated weight.
type edge struct {
	a, b object.OID
	w    int64
}

// hubMinPartners is the distinct-co-access-partner count at which an object
// is classified a hub. Below it, an object's neighbourhood fits the two chain
// slots it gets (a trace neighbour on each side); at or above it, chaining
// would satisfy two partners and scatter the rest, so the object goes to the
// packed hub region instead.
const hubMinPartners = 8

// Compute derives a placement order from the recorded traces. live is the
// canonical live-object set (ascending, as object.Manager.AllOIDs returns
// it); trace entries naming dead objects are ignored. The returned order
// contains every element of live exactly once.
func Compute(traces [][]object.OID, live []object.OID) *Plan {
	liveSet := make(map[object.OID]struct{}, len(live))
	for _, oid := range live {
		liveSet[oid] = struct{}{}
	}

	// Access counts and accumulated edge weights from the filtered traces.
	heat := make(map[object.OID]int64)
	weights := make(map[edge]int64)
	p := &Plan{}
	for _, raw := range traces {
		filtered := raw[:0:0]
		for _, oid := range raw {
			if _, ok := liveSet[oid]; ok {
				filtered = append(filtered, oid)
			}
		}
		if len(filtered) == 0 {
			continue
		}
		p.Traces++
		for i, oid := range filtered {
			heat[oid]++
			if i == 0 {
				continue
			}
			a, b := filtered[i-1], oid
			if a == b {
				continue
			}
			if b < a {
				a, b = b, a
			}
			weights[edge{a: a, b: b}]++
		}
	}
	p.HotObjects = len(heat)
	p.Edges = len(weights)

	// Hub tier: distinct-partner counts come straight from the edge set.
	partners := make(map[object.OID]int, len(heat))
	for e := range weights {
		partners[e.a]++
		partners[e.b]++
	}
	hubs := make(map[object.OID]struct{})
	for oid, n := range partners {
		if n >= hubMinPartners {
			hubs[oid] = struct{}{}
		}
	}
	p.Hubs = len(hubs)

	// Canonical edge order: weight descending, then endpoints ascending.
	edges := make([]edge, 0, len(weights))
	for e, w := range weights {
		e.w = w
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Greedy chain merge: accept an edge when both endpoints still have a
	// free end and are not already on the same chain.
	adj := make(map[object.OID][]object.OID, len(heat))
	parent := make(map[object.OID]object.OID, len(heat))
	var find func(object.OID) object.OID
	find = func(x object.OID) object.OID {
		r, ok := parent[x]
		if !ok || r == x {
			return x
		}
		root := find(r)
		parent[x] = root
		return root
	}
	for _, e := range edges {
		if _, hub := hubs[e.a]; hub {
			continue
		}
		if _, hub := hubs[e.b]; hub {
			continue
		}
		if len(adj[e.a]) >= 2 || len(adj[e.b]) >= 2 {
			continue
		}
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			continue
		}
		parent[ra] = rb
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}

	// Walk each chain from its canonical end (the smaller-OID end; for a
	// cycle-free merge every multi-object chain has exactly two degree-<2
	// ends). Hot singletons are chains of length one.
	hot := make([]object.OID, 0, len(heat))
	for oid := range heat {
		hot = append(hot, oid)
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	type chainInfo struct {
		oids []object.OID
		heat int64
	}
	var chains []chainInfo
	visited := make(map[object.OID]struct{}, len(hot))
	for _, start := range hot {
		if _, isHub := hubs[start]; isHub {
			continue
		}
		if _, done := visited[start]; done || len(adj[start]) >= 2 {
			continue
		}
		var c chainInfo
		prev, cur := object.NilOID, start
		for {
			visited[cur] = struct{}{}
			c.oids = append(c.oids, cur)
			c.heat += heat[cur]
			next := object.NilOID
			for _, n := range adj[cur] {
				if n != prev {
					next = n
					break
				}
			}
			if next == object.NilOID {
				break
			}
			prev, cur = cur, next
		}
		if len(c.oids) >= 2 {
			p.Chains++
		}
		chains = append(chains, c)
	}
	// Hottest chains first; ties break on the chain's first OID, which is
	// its smallest-OID end by construction.
	sort.SliceStable(chains, func(i, j int) bool {
		if chains[i].heat != chains[j].heat {
			return chains[i].heat > chains[j].heat
		}
		return chains[i].oids[0] < chains[j].oids[0]
	})

	// Hub region first: hottest hubs lead, ties break on OID.
	hubOrder := make([]object.OID, 0, len(hubs))
	for oid := range hubs {
		hubOrder = append(hubOrder, oid)
	}
	sort.Slice(hubOrder, func(i, j int) bool {
		if heat[hubOrder[i]] != heat[hubOrder[j]] {
			return heat[hubOrder[i]] > heat[hubOrder[j]]
		}
		return hubOrder[i] < hubOrder[j]
	})

	p.Order = make([]object.OID, 0, len(live))
	p.Order = append(p.Order, hubOrder...)
	for _, c := range chains {
		p.Order = append(p.Order, c.oids...)
	}
	// Cold tier: live objects no trace mentioned, ascending.
	for _, oid := range live {
		if _, isHot := heat[oid]; !isHot {
			p.Order = append(p.Order, oid)
		}
	}
	return p
}

// Package btree implements an in-memory B+ tree keyed by (float64, uint64)
// composite keys. The GMR manager uses one tree per materialized result
// column to answer backward range queries (Section 3.2 of the paper): the
// float component is the materialized function result, the auxiliary
// component disambiguates distinct argument combinations that share a result
// value, so the tree behaves as a duplicate-tolerant secondary index.
package btree

import "fmt"

// Key is the composite search key of the tree. Keys are ordered first by F,
// then by Aux.
type Key struct {
	F   float64
	Aux uint64
}

// Less reports whether k orders strictly before other.
func (k Key) Less(other Key) bool {
	if k.F != other.F {
		return k.F < other.F
	}
	return k.Aux < other.Aux
}

// degree is the maximum number of children of an interior node. Leaves hold
// up to degree-1 keys. 32 keeps nodes small enough to stress the split and
// merge paths in tests while remaining shallow for realistic GMR sizes.
const degree = 32

const maxKeys = degree - 1

type node struct {
	leaf     bool
	keys     []Key
	vals     []any   // leaf only, parallel to keys
	children []*node // interior only, len(keys)+1
	next     *node   // leaf only: right sibling for range scans
}

// Tree is a B+ tree. The zero value is not usable; call New.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under key, if any.
func (t *Tree) Get(key Key) (any, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := lowerBound(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return nil, false
}

// Insert stores value under key, replacing any previous value. It reports
// whether the key was newly inserted (false means replaced).
func (t *Tree) Insert(key Key, value any) bool {
	if len(t.root.keys) == maxKeys {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	inserted := t.insertNonFull(t.root, key, value)
	if inserted {
		t.size++
	}
	return inserted
}

func (t *Tree) insertNonFull(n *node, key Key, value any) bool {
	for !n.leaf {
		i := childIndex(n.keys, key)
		if len(n.children[i].keys) == maxKeys {
			t.splitChild(n, i)
			// After the split the separator at i decides which side owns key.
			if !key.Less(n.keys[i]) {
				i++
			}
		}
		n = n.children[i]
	}
	i := lowerBound(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		n.vals[i] = value
		return false
	}
	n.keys = append(n.keys, Key{})
	n.vals = append(n.vals, nil)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.vals[i+1:], n.vals[i:])
	n.keys[i] = key
	n.vals[i] = value
	return true
}

// splitChild splits the full child at index i of parent p into two nodes and
// hoists a separator key into p.
func (t *Tree) splitChild(p *node, i int) {
	child := p.children[i]
	mid := maxKeys / 2
	right := &node{leaf: child.leaf}
	var sep Key
	if child.leaf {
		// B+ leaf split: the separator is copied, not moved; all keys stay
		// in the leaves, and the leaf chain is stitched.
		right.keys = append(right.keys, child.keys[mid:]...)
		right.vals = append(right.vals, child.vals[mid:]...)
		child.keys = child.keys[:mid]
		child.vals = child.vals[:mid]
		right.next = child.next
		child.next = right
		sep = right.keys[0]
	} else {
		sep = child.keys[mid]
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}
	p.keys = append(p.keys, Key{})
	copy(p.keys[i+1:], p.keys[i:])
	p.keys[i] = sep
	p.children = append(p.children, nil)
	copy(p.children[i+2:], p.children[i+1:])
	p.children[i+1] = right
}

// Delete removes key from the tree and reports whether it was present.
//
// Deletion uses lazy rebalancing: underflowing leaves are allowed (they never
// become empty except transiently) and empty nodes are compacted on the way
// down. This keeps the structure valid for all read operations while avoiding
// the full borrow/merge machinery; the tree is rebuilt by the GMR manager on
// bulk deletions anyway.
func (t *Tree) Delete(key Key) bool {
	n := t.root
	var parents []*node
	var idxs []int
	for !n.leaf {
		i := childIndex(n.keys, key)
		parents = append(parents, n)
		idxs = append(idxs, i)
		n = n.children[i]
	}
	i := lowerBound(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	// Compact empty leaves out of their parents so scans skip no garbage.
	for len(n.keys) == 0 && len(parents) > 0 {
		p := parents[len(parents)-1]
		ci := idxs[len(idxs)-1]
		parents = parents[:len(parents)-1]
		idxs = idxs[:len(idxs)-1]
		if n.leaf {
			// Unlink from the leaf chain.
			if ci > 0 {
				p.children[ci-1].next = n.next
			} else if left := t.leftLeafSibling(n); left != nil {
				left.next = n.next
			}
		}
		p.children = append(p.children[:ci], p.children[ci+1:]...)
		if ci > 0 {
			p.keys = append(p.keys[:ci-1], p.keys[ci:]...)
		} else if len(p.keys) > 0 {
			p.keys = p.keys[1:]
		}
		n = p
		if len(p.children) > 0 {
			break
		}
	}
	// Collapse a root with a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true}
	}
	return true
}

// leftLeafSibling finds the leaf immediately preceding n in the chain by a
// full walk. Only used on the rare empty-leaf unlink path.
func (t *Tree) leftLeafSibling(n *node) *node {
	cur := t.leftmostLeaf()
	for cur != nil && cur.next != n {
		cur = cur.next
	}
	return cur
}

func (t *Tree) leftmostLeaf() *node {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n
}

// Range calls fn for every entry with lo <= key.F <= hi in ascending order.
// Iteration stops early if fn returns false.
func (t *Tree) Range(lo, hi float64, fn func(Key, any) bool) {
	start := Key{F: lo, Aux: 0}
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, start)]
	}
	i := lowerBound(n.keys, start)
	for n != nil {
		for ; i < len(n.keys); i++ {
			k := n.keys[i]
			if k.F > hi {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
		i = 0
	}
}

// Ascend calls fn for every entry in ascending key order.
func (t *Tree) Ascend(fn func(Key, any) bool) {
	n := t.leftmostLeaf()
	for n != nil {
		for i := range n.keys {
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Min returns the smallest key, if the tree is non-empty.
func (t *Tree) Min() (Key, bool) {
	n := t.leftmostLeaf()
	for n != nil {
		if len(n.keys) > 0 {
			return n.keys[0], true
		}
		n = n.next
	}
	return Key{}, false
}

// Max returns the largest key, if the tree is non-empty.
func (t *Tree) Max() (Key, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		return Key{}, false
	}
	return n.keys[len(n.keys)-1], true
}

// childIndex returns the index of the child subtree that may contain key:
// the count of separator keys <= key.
func childIndex(keys []Key, key Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if key.Less(keys[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// lowerBound returns the first index whose key is >= key.
func lowerBound(keys []Key, key Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid].Less(key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Validate checks structural invariants and returns an error describing the
// first violation. Used by tests.
func (t *Tree) Validate() error {
	count := 0
	var prev *Key
	t.Ascend(func(k Key, _ any) bool {
		if prev != nil && !prev.Less(k) {
			panic(fmt.Sprintf("btree: keys out of order: %v then %v", *prev, k))
		}
		p := k
		prev = &p
		count++
		return true
	})
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d reachable keys", t.size, count)
	}
	return t.validateNode(t.root)
}

func (t *Tree) validateNode(n *node) error {
	if n.leaf {
		if len(n.keys) != len(n.vals) {
			return fmt.Errorf("btree: leaf keys/vals mismatch: %d vs %d", len(n.keys), len(n.vals))
		}
		return nil
	}
	if len(n.children) != len(n.keys)+1 {
		return fmt.Errorf("btree: interior node has %d keys but %d children", len(n.keys), len(n.children))
	}
	for _, c := range n.children {
		if err := t.validateNode(c); err != nil {
			return err
		}
	}
	return nil
}

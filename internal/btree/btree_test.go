package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("empty tree has length %d", tr.Len())
	}
	if _, ok := tr.Get(Key{F: 1}); ok {
		t.Fatal("Get on empty tree succeeded")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree succeeded")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree succeeded")
	}
	tr.Range(0, 100, func(Key, any) bool { t.Fatal("range on empty tree yielded"); return true })
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		if !tr.Insert(Key{F: float64(i), Aux: uint64(i)}, i) {
			t.Fatalf("insert %d reported replace", i)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d, want 1000", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(Key{F: float64(i), Aux: uint64(i)})
		if !ok || v.(int) != i {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	// Replace.
	if tr.Insert(Key{F: 5, Aux: 5}, "five") {
		t.Fatal("replacing insert reported new")
	}
	if v, _ := tr.Get(Key{F: 5, Aux: 5}); v != "five" {
		t.Fatalf("replaced value = %v", v)
	}
	if tr.Len() != 1000 {
		t.Fatalf("len after replace = %d", tr.Len())
	}
	// Delete every third key.
	for i := 0; i < 1000; i += 3 {
		if !tr.Delete(Key{F: float64(i), Aux: uint64(i)}) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(Key{F: 0, Aux: 0}) {
		t.Fatal("double delete succeeded")
	}
	for i := 0; i < 1000; i++ {
		_, ok := tr.Get(Key{F: float64(i), Aux: uint64(i)})
		if (i%3 == 0) == ok {
			t.Fatalf("Get(%d) after deletes = %v", i, ok)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateFloatsDistinctAux(t *testing.T) {
	tr := New()
	for aux := uint64(1); aux <= 100; aux++ {
		tr.Insert(Key{F: 7.5, Aux: aux}, aux)
	}
	if tr.Len() != 100 {
		t.Fatalf("len = %d", tr.Len())
	}
	n := 0
	tr.Range(7.5, 7.5, func(k Key, v any) bool {
		n++
		return true
	})
	if n != 100 {
		t.Fatalf("range over duplicates found %d, want 100", n)
	}
}

func TestRangeBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(Key{F: float64(i)}, i)
	}
	var got []int
	tr.Range(10, 20, func(_ Key, v any) bool {
		got = append(got, v.(int))
		return true
	})
	if len(got) != 11 || got[0] != 10 || got[10] != 20 {
		t.Fatalf("range [10,20] = %v", got)
	}
	// Early stop.
	count := 0
	tr.Range(0, 99, func(Key, any) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
	// Empty window between keys.
	got = nil
	tr.Range(10.2, 10.8, func(_ Key, v any) bool { got = append(got, v.(int)); return true })
	if len(got) != 0 {
		t.Fatalf("empty window returned %v", got)
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	order := rand.New(rand.NewSource(3)).Perm(500)
	for _, i := range order {
		tr.Insert(Key{F: float64(i)}, i)
	}
	if k, _ := tr.Min(); k.F != 0 {
		t.Fatalf("min = %v", k)
	}
	if k, _ := tr.Max(); k.F != 499 {
		t.Fatalf("max = %v", k)
	}
}

// TestQuickAgainstReference drives random operation sequences against a map
// reference and compares contents and ordered iteration.
func TestQuickAgainstReference(t *testing.T) {
	check := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[Key]int{}
		for i := 0; i < int(nOps)*20; i++ {
			k := Key{F: float64(rng.Intn(50)), Aux: uint64(rng.Intn(4))}
			switch rng.Intn(3) {
			case 0, 1:
				tr.Insert(k, i)
				ref[k] = i
			case 2:
				delT := tr.Delete(k)
				_, inRef := ref[k]
				if delT != inRef {
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		var keys []Key
		tr.Ascend(func(k Key, v any) bool {
			keys = append(keys, k)
			if ref[k] != v.(int) {
				keys = nil
				return false
			}
			return true
		})
		if len(keys) != len(ref) {
			return false
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i].Less(keys[j]) }) {
			return false
		}
		// Random range queries against the reference.
		for q := 0; q < 10; q++ {
			lo := float64(rng.Intn(50))
			hi := lo + float64(rng.Intn(10))
			want := 0
			for k := range ref {
				if k.F >= lo && k.F <= hi {
					want++
				}
			}
			got := 0
			tr.Range(lo, hi, func(Key, any) bool { got++; return true })
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Package mvcc holds the version state shared by the MVCC snapshot read
// path: a monotonically increasing stable version, a registry of reader
// pins, and a reader barrier for the few heavyweight operations that cannot
// be versioned (DDL, materialization, garbage collection, durability).
//
// The protocol is single-writer / multi-reader, matching the facade's
// exclusive write lock:
//
//   - Writers mutate in place while holding the exclusive Database lock.
//     Before the first mutation of a unit (page, object-directory entry,
//     GMR entry) in the current epoch, the pre-image is captured and tagged
//     with the current stable version — the state the tag names.
//   - At the end of every write operation the facade publishes: the stable
//     version is incremented, making the mutated state the new stable one,
//     and captures no pinned reader can reach are reclaimed.
//   - Readers pin the current stable version V and reconstruct the state at
//     V from the capture overlays: the capture with the smallest tag >= V
//     is exactly the state at V (nothing changed between V and the epoch
//     that captured it); no such capture means the unit is unchanged since
//     V and the live state serves.
//
// Pins are cheap and short-lived (one query). Barrier operations block new
// pins and drain the active ones, then run with the engine to themselves.
package mvcc

import "sync"

// State is the shared version state. The zero value is NOT ready; use
// NewState.
type State struct {
	mu      sync.Mutex
	cond    *sync.Cond
	stable  uint64
	pins    map[uint64]int
	active  int
	barrier bool
}

// NewState returns a fresh state at stable version 0 with no pins.
func NewState() *State {
	s := &State{pins: make(map[uint64]int)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Stable returns the current stable (last published) version. Capture sites
// use it as the tag for pre-images taken during the current epoch.
func (s *State) Stable() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stable
}

// Pin registers a reader at the current stable version and returns it with
// a release function. Pin blocks while a barrier is active.
func (s *State) Pin() (uint64, func()) {
	s.mu.Lock()
	for s.barrier {
		s.cond.Wait()
	}
	v := s.stable
	s.pins[v]++
	s.active++
	s.mu.Unlock()
	var once sync.Once
	return v, func() { once.Do(func() { s.unpin(v) }) }
}

func (s *State) unpin(v uint64) {
	s.mu.Lock()
	if n := s.pins[v]; n <= 1 {
		delete(s.pins, v)
	} else {
		s.pins[v] = n - 1
	}
	s.active--
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Publish increments the stable version — the writer's mutations become the
// published state — and returns the reclamation floor: the smallest pinned
// version, or the new stable version when no reader is pinned. Capture
// overlays may drop every pre-image tagged below the floor.
func (s *State) Publish() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stable++
	floor := s.stable
	for v := range s.pins {
		if v < floor {
			floor = v
		}
	}
	return floor
}

// BeginBarrier blocks new pins and waits until every active pin is
// released. The caller must pair it with EndBarrier and must not pin
// itself while the barrier is up.
func (s *State) BeginBarrier() {
	s.mu.Lock()
	for s.barrier {
		s.cond.Wait()
	}
	s.barrier = true
	for s.active > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// EndBarrier lifts the barrier and wakes blocked pinners.
func (s *State) EndBarrier() {
	s.mu.Lock()
	s.barrier = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Active returns the number of currently pinned readers (the zero-leaked-
// pins audit of the simulation harness).
func (s *State) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// PinnedVersions returns the distinct pinned versions, unordered. Intended
// for audits and tests.
func (s *State) PinnedVersions() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.pins))
	for v := range s.pins {
		out = append(out, v)
	}
	return out
}

package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"gomdb"
	"gomdb/internal/object"
)

// Durable layout: Config.Engine.Path is the router root. Shard i keeps its
// page store under <root>/shard-<i>/, and the router persists its own small
// metadata file at <root>/router.json (written tmp+rename, so it is always
// either the old or the new version). There is no cross-shard atomic
// commit: every shard checkpoints independently, and a crash mid-fan-out
// leaves the shards at different checkpoint horizons. Recovery tolerates
// that — each shard replays to its own last committed checkpoint, and the
// router rebuilds its routing table from what actually survived — but a
// multi-shard batch is NOT atomic across a crash, only per shard. (A
// two-phase commit across shards is the served-process tier's problem;
// within one process the paper's recovery unit is the engine.)
//
// OID safety across crashes does not depend on router.json freshness: on
// reopen the allocator is seeded past both the persisted floor and the
// maximum OID actually recovered on any shard, so an OID persisted by a
// shard checkpoint that outran the last metadata write is never reissued.

const metaVersion = 1

type routerMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
	// NextOID is the allocator floor at the last metadata write.
	NextOID uint64 `json:"next_oid"`
	// Partitioned lists type names with routed instances (sorted, for
	// deterministic files).
	Partitioned []string `json:"partitioned,omitempty"`
}

func (db *DB) shardPath(i int) string {
	return filepath.Join(db.path, fmt.Sprintf("shard-%d", i))
}

func (db *DB) metaPath() string { return filepath.Join(db.path, "router.json") }

// prepareDirs validates an existing router directory (shard count must
// match) or lays out a fresh one.
func (db *DB) prepareDirs(n int) error {
	if raw, err := os.ReadFile(db.metaPath()); err == nil {
		var meta routerMeta
		if err := json.Unmarshal(raw, &meta); err != nil {
			return fmt.Errorf("shard: corrupt router.json: %w", err)
		}
		if meta.Version != metaVersion {
			return fmt.Errorf("shard: router.json version %d, want %d", meta.Version, metaVersion)
		}
		if meta.Shards != n {
			return fmt.Errorf("%w: directory has %d, Config.Shards is %d", ErrShardCountMismatch, meta.Shards, n)
		}
		db.alloc.seed(object.OID(meta.NextOID))
		for _, tn := range meta.Partitioned {
			db.partitioned[tn] = true
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if err := os.MkdirAll(db.shardPath(i), 0o755); err != nil {
			return err
		}
	}
	return nil
}

// saveMeta persists the routing metadata under the read lock; a no-op on an
// in-memory router.
func (db *DB) saveMeta() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.saveMetaLocked()
}

// saveMetaLocked writes router.json tmp+rename. Caller holds db.mu (read or
// write). In-memory routers skip it.
func (db *DB) saveMetaLocked() error {
	if db.path == "" {
		return nil
	}
	meta := routerMeta{
		Version: metaVersion,
		Shards:  len(db.shards),
		NextOID: uint64(db.alloc.PeekOID()),
	}
	for tn := range db.partitioned {
		meta.Partitioned = append(meta.Partitioned, tn)
	}
	sort.Strings(meta.Partitioned)
	raw, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := db.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, db.metaPath())
}

// recoverRouting rebuilds the owner table after the shards have recovered:
// every shard's live OID set is scanned (a charge-free directory walk — no
// pages are touched), an OID present on more than one shard is a replica,
// and one present on exactly one shard is owned by it. The allocator is
// then seeded past the maximum recovered OID, so even a shard checkpoint
// that outran the last router.json write cannot cause an OID to be
// reissued.
func (db *DB) recoverRouting() error {
	counts := make(map[gomdb.OID]int)
	last := make(map[gomdb.OID]int)
	var maxOID gomdb.OID
	for i, sh := range db.shards {
		for _, oid := range sh.Objects.AllOIDs() {
			counts[oid]++
			last[oid] = i
			if oid > maxOID {
				maxOID = oid
			}
		}
	}
	for oid, n := range counts {
		if n > 1 {
			db.owner[oid] = replicated
		} else {
			db.owner[oid] = last[oid]
		}
	}
	db.alloc.seed(object.OID(maxOID) + 1)
	return nil
}

// OpenAt opens (or creates) a durable sharded database rooted at
// Config.Engine.Path, running each shard's recovery in shard order and then
// rebuilding the routing table from the recovered state.
func OpenAt(cfg Config) (*DB, error) {
	if cfg.Engine.Path == "" {
		return nil, fmt.Errorf("shard: OpenAt requires Config.Engine.Path")
	}
	if err := os.MkdirAll(cfg.Engine.Path, 0o755); err != nil {
		return nil, err
	}
	return open(cfg)
}

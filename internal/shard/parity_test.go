package shard_test

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

// parityRun is the outcome of the fixed op plan against one shard count: the
// merged clock delta over the op window (setup charges excluded — replica
// creation and fresh-heap population scale with shard count by construction)
// plus a canonical trace of every op's result. Sums are kept separate
// because shard partials add in shard order, so their float totals carry an
// addition-order wobble.
type parityRun struct {
	clock gomdb.Clock
	trace []string
	sums  []float64
}

// runParityPlan executes the fixed plan at the given shard count. The plan
// exercises every routed path: point forwards, scatter backward/tabular/
// aggregate reads, and point updates whose RRR invalidation and immediate
// rematerialization land on the owning shard only.
func runParityPlan(t *testing.T, shards int) parityRun {
	t.Helper()
	db := openSharded(t, shards)
	defer db.Close()
	g, err := fixtures.PopulateGeometrySharded(db, 48, 17)
	if err != nil {
		t.Fatal(err)
	}
	// The plan's GMRs deliberately skip the MDS grid file: a grid directory
	// probe costs a number of pins that depends on how the grid has split,
	// and per-shard grids over disjoint subsets split differently than one
	// grid over the union. That is the single structure-dependent charge in
	// the engine — every per-entry charge (scans, forwards, invalidation,
	// rematerialization) is layout-independent, which is what this test
	// pins down. (TestScatterMatchesUnsharded covers MDS result parity.)
	if err := db.Materialize(gomdb.MaterializeOptions{
		Name: "Gvw", Funcs: []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true, Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Materialize(gomdb.MaterializeOptions{
		Name: "Gdist", Funcs: []string{"Cuboid.distance"},
		Complete: true, Strategy: gomdb.Deferred, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}

	base := db.Snapshot()
	var run parityRun
	tr := func(format string, args ...any) {
		run.trace = append(run.trace, fmt.Sprintf(format, args...))
	}

	// Point-routed forwards.
	for i := 0; i < 12; i++ {
		c := g.Cuboids[(i*7)%len(g.Cuboids)]
		v, err := db.Call("Cuboid.volume", gomdb.Ref(c))
		if err != nil {
			t.Fatal(err)
		}
		tr("fwd %v=%.9f", c, v.F)
	}
	// Scatter backward.
	matches, err := db.Backward("Cuboid.volume", 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		tr("bwd %v=%.9f", m.Args[0].R, m.Result.F)
	}
	// Scatter aggregates (float totals: tolerance lane).
	s, err := db.Sum("Cuboid.weight", nil)
	if err != nil {
		t.Fatal(err)
	}
	run.sums = append(run.sums, s)
	sub := append([]gomdb.OID(nil), g.Cuboids[:10]...)
	s, err = db.Sum("Cuboid.weight", sub)
	if err != nil {
		t.Fatal(err)
	}
	run.sums = append(run.sums, s)
	// Scatter tabular, canonicalized by first-arg OID.
	rows, err := db.Retrieve("Gvw", []gomdb.FieldSpec{
		gomdb.AnySpec(), gomdb.RangeSpec(100, 400), gomdb.AnySpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Args[0].R < rows[j].Args[0].R })
	for _, r := range rows {
		tr("tab %v=%.9f", r.Args[0].R, r.Results[0].F)
	}
	// Scatter GOMql aggregates.
	res, err := db.Query("range c: Cuboid retrieve count(c.volume), min(c.volume), max(c.volume)", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr("agg count=%d min=%.9f max=%.9f", res.Rows[0][0].I, res.Rows[0][1].F, res.Rows[0][2].F)
	// Point updates: vertex moves invalidate the owning shard's GMR entries;
	// Gvw rematerializes immediately, Gdist is marked deferred-invalid.
	for i := 0; i < 6; i++ {
		c := g.Cuboids[(i*5)%len(g.Cuboids)]
		v1, err := db.GetAttr(c, "V1")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Set(v1.R, "X", gomdb.Float(float64(3+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Re-read through the rematerialized entries.
	for i := 0; i < 6; i++ {
		c := g.Cuboids[(i*5)%len(g.Cuboids)]
		v, err := db.Call("Cuboid.volume", gomdb.Ref(c))
		if err != nil {
			t.Fatal(err)
		}
		tr("refwd %v=%.9f", c, v.F)
	}
	matches, err = db.Backward("Cuboid.volume", 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	tr("rebwd n=%d", len(matches))

	end := db.Snapshot()
	run.clock = gomdb.Clock{
		PhysReads:  end.PhysReads - base.PhysReads,
		PhysWrites: end.PhysWrites - base.PhysWrites,
		LogReads:   end.LogReads - base.LogReads,
		LogWrites:  end.LogWrites - base.LogWrites,
		CPUOps:     end.CPUOps - base.CPUOps,
	}
	return run
}

// TestChargeParityAcrossShardCounts: the same op plan against 1, 2, and 4
// shards produces an IDENTICAL merged clock delta and op trace. This is the
// router's accounting contract: with the shared OID allocator the same plan
// yields the same record bytes everywhere, point ops charge only the owning
// shard, and scatter ops charge the union of the per-shard work — so the
// merged ledger is a property of the plan, not the layout.
func TestChargeParityAcrossShardCounts(t *testing.T) {
	runs := map[int]parityRun{}
	for _, n := range []int{1, 2, 4} {
		runs[n] = runParityPlan(t, n)
	}
	ref := runs[1]
	// The pool is big enough that the warm working set never evicts: the op
	// window must be free of physical READS on every layout. (PhysWrites in
	// the window are the FORCE write-throughs of auxiliary GMR/RRR pages on
	// each invalidation — charged per op, not per layout, so the equality
	// check below covers them.)
	if ref.clock.PhysReads != 0 {
		t.Fatalf("op window did physical reads at shards=1: %+v", ref.clock)
	}
	for _, n := range []int{2, 4} {
		got := runs[n]
		if got.clock != ref.clock {
			t.Errorf("shards=%d clock delta %+v, want %+v", n, got.clock, ref.clock)
		}
		if len(got.trace) != len(ref.trace) {
			t.Fatalf("shards=%d trace has %d ops, want %d", n, len(got.trace), len(ref.trace))
		}
		for i := range ref.trace {
			if got.trace[i] != ref.trace[i] {
				t.Errorf("shards=%d trace[%d] = %q, want %q", n, i, got.trace[i], ref.trace[i])
			}
		}
		if len(got.sums) != len(ref.sums) {
			t.Fatalf("shards=%d has %d sums, want %d", n, len(got.sums), len(ref.sums))
		}
		for i := range ref.sums {
			if math.Abs(got.sums[i]-ref.sums[i]) > 1e-6*math.Abs(ref.sums[i]) {
				t.Errorf("shards=%d sum[%d] = %v, want %v", n, i, got.sums[i], ref.sums[i])
			}
		}
	}
}

// Package shard implements horizontal sharding: a router (DB) that exposes
// the facade surface of gomdb.Database over N independent engine instances,
// partitioning type extensions across shards. Point operations — forward
// lookups, attribute reads and updates, elementary set updates — route to the
// single shard that owns the argument object, so an update's RRR invalidation
// sweep touches only that shard's structures and the other N-1 shards keep
// serving reads. Scatter operations — backward queries, tabular retrievals,
// extensions, aggregates, read-classified GOMql — fan out to all shards in
// parallel goroutines and merge the partials under deterministic rules.
// Maintenance operations — Materialize, Dematerialize, Flush, Checkpoint,
// Batch — are coordinated fan-outs that take each shard's write barrier in
// shard-index order.
//
// # Placement
//
// An object lives on exactly one shard (its owner), chosen when it is
// created: by the owner of the first object it references, by an explicit
// NewOn, or — for an unconstrained create — by an OID hash (ShardFor).
// Whole object graphs are therefore co-located, and a create or update that
// would make an object reference another shard's object is refused with
// ErrCrossShardRef: the engines are fully independent (separate buffer
// pools, heaps, clocks) and a cross-shard pointer would dangle locally.
//
// Shared reference data — objects every shard's computations need, like the
// materials and robots of the geometry schema — is replicated instead:
// NewReplicated creates the object on every shard under the same OID, reads
// are served by any replica, and updates broadcast to all of them. A
// replicated object may only reference other replicated objects.
//
// # Charge parity
//
// Every shard draws OIDs from one router-owned allocator, injected via
// gomdb.Config.OIDAllocator. References encode as varints, so OID magnitude
// affects record length and therefore CPU charges; the shared counter makes
// the same logical plan assign the same OIDs — the same record bytes, the
// same simulated charges — at every shard count. Write fan-outs run
// sequentially in shard-index order for the same reason (deferred
// rematerialization allocates result objects); only scatter reads run in
// parallel. See DESIGN.md "Horizontal sharding" for the parity class this
// buys and its limits.
package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"gomdb"
	"gomdb/internal/object"
)

// Typed refusal errors. Each names a structural limit of the sharded
// configuration, not a transient condition.
var (
	// ErrCrossShardRef is returned when a create or update would make an
	// object reference an object owned by a different shard.
	ErrCrossShardRef = errors.New("shard: reference would cross shards (co-locate the graph with NewOn or replicate the target with NewReplicated)")
	// ErrUnknownOID is returned when an operation names an OID no shard owns.
	ErrUnknownOID = errors.New("shard: unknown object")
	// ErrNotCombinable is returned for GOMql aggregates that cannot be
	// reconstructed from per-shard partials (avg: per-shard averages lose
	// the weights).
	ErrNotCombinable = errors.New("shard: aggregate not combinable from per-shard partials (rewrite avg as sum and count)")
	// ErrNotReadOnly is returned when a GOMql statement routed through the
	// router cannot be proven read-only; materialize statements and
	// side-effecting queries must use the typed API (Materialize, Call).
	ErrNotReadOnly = errors.New("shard: statement is not provably read-only; use the typed API for sharded writes")
	// ErrPartitionedArgs is returned when a materialization names more than
	// one partitioned argument type: the cross product of two partitioned
	// extensions spans shard boundaries, which the independent engines
	// cannot enumerate.
	ErrPartitionedArgs = errors.New("shard: materialization over more than one partitioned argument type (replicate all but one argument extension)")
	// ErrShardCountMismatch is returned by OpenAt when the directory was
	// written with a different shard count.
	ErrShardCountMismatch = errors.New("shard: directory shard count differs from Config.Shards")
)

// Config configures a sharded database.
type Config struct {
	// Shards is the number of engine instances (default 1).
	Shards int
	// Engine is the per-shard engine configuration. Path, if set, is the
	// router's root directory: shard i stores its pages under
	// Path/shard-i/ and the router keeps its own metadata in
	// Path/router.json. OIDAllocator must be left nil (the router injects
	// its own).
	Engine gomdb.Config
}

// replicated marks an OID owned by every shard in the owner table.
const replicated = -1

// DB is the shard router. It is safe for concurrent use under the same
// contract as gomdb.Database: point and scatter reads run concurrently,
// writes serialize per shard, maintenance fan-outs serialize globally.
type DB struct {
	shards []*gomdb.Database
	alloc  *allocator
	path   string

	// mu guards the routing state below. It orders creates (which consult
	// the allocator and the owner table together) but never wraps a shard
	// call that can block on a shard's own lock for long: routing lookups
	// release it before dispatching.
	mu sync.RWMutex
	// owner maps every live OID to its shard index, or `replicated`.
	owner map[gomdb.OID]int
	// partitioned records type names that have at least one routed (non-
	// replicated) instance; Materialize uses it to refuse multi-partitioned
	// argument cross products.
	partitioned map[string]bool
}

// allocator is the shared OID source injected into every shard
// (object.OIDAllocator). pin makes the next allocation return a specific
// OID once — the replication primitive: the router pins the first replica's
// OID before each subsequent shard's create so all replicas coincide.
type allocator struct {
	mu     sync.Mutex
	next   object.OID
	pinned object.OID // 0 = none
}

func (a *allocator) NextOID() object.OID {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pinned != 0 {
		oid := a.pinned
		a.pinned = 0
		return oid
	}
	oid := a.next
	a.next++
	return oid
}

func (a *allocator) PeekOID() object.OID {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.pinned != 0 {
		return a.pinned
	}
	return a.next
}

func (a *allocator) pin(oid object.OID) {
	a.mu.Lock()
	a.pinned = oid
	a.mu.Unlock()
}

// seed raises the counter to at least next.
func (a *allocator) seed(next object.OID) {
	a.mu.Lock()
	if next > a.next {
		a.next = next
	}
	a.mu.Unlock()
}

// Open creates a sharded database. With Engine.Path unset it is in-memory;
// with Path set it delegates to OpenAt, panicking on error.
func Open(cfg Config) *DB {
	if cfg.Engine.Path != "" {
		db, err := OpenAt(cfg)
		if err != nil {
			panic(err)
		}
		return db
	}
	db, err := open(cfg)
	if err != nil {
		panic(err) // unreachable in-memory: open only fails on durable paths
	}
	return db
}

// open builds the router and its engines; durable plumbing is in durable.go.
func open(cfg Config) (*DB, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	db := &DB{
		alloc:       &allocator{next: 1},
		owner:       make(map[gomdb.OID]int),
		partitioned: make(map[string]bool),
		path:        cfg.Engine.Path,
	}
	durable := cfg.Engine.Path != ""
	if durable {
		if err := db.prepareDirs(n); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		ecfg := cfg.Engine
		ecfg.OIDAllocator = db.alloc
		var sh *gomdb.Database
		if durable {
			ecfg.Path = db.shardPath(i)
			var err error
			sh, err = gomdb.OpenAt(ecfg)
			if err != nil {
				for _, prev := range db.shards {
					prev.Crash()
				}
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
		} else {
			sh = gomdb.Open(ecfg)
		}
		db.shards = append(db.shards, sh)
	}
	if durable {
		if err := db.recoverRouting(); err != nil {
			for _, sh := range db.shards {
				sh.Crash()
			}
			return nil, err
		}
	}
	return db, nil
}

// Shards returns the number of engine instances.
func (db *DB) Shards() int { return len(db.shards) }

// Shard returns shard i's engine, for audits and diagnostics. Mutating it
// directly bypasses the routing table; production writes go through the
// router.
func (db *DB) Shard(i int) *gomdb.Database { return db.shards[i] }

// EachShard calls fn for every shard in index order, stopping on error.
func (db *DB) EachShard(fn func(i int, sh *gomdb.Database) error) error {
	for i, sh := range db.shards {
		if err := fn(i, sh); err != nil {
			return err
		}
	}
	return nil
}

// Owner reports which shard owns oid: the shard index, or -1 with ok=true
// for a replicated object. ok=false means no shard knows the OID.
func (db *DB) Owner(oid gomdb.OID) (int, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sh, ok := db.owner[oid]
	return sh, ok
}

// RoutedOIDs returns every OID the routing table knows, in ascending order —
// the audit surface for checking that every entry resolves to a live object.
func (db *DB) RoutedOIDs() []gomdb.OID {
	db.mu.RLock()
	out := make([]gomdb.OID, 0, len(db.owner))
	for oid := range db.owner {
		out = append(out, oid)
	}
	db.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ShardFor is the placement hash: it maps a key (normally a prospective OID)
// to a shard index by Fibonacci multiplicative hashing — the same constant
// the RRR uses to scramble OIDs into page probes, applied here to spread
// consecutively allocated OIDs evenly across shards.
func (db *DB) ShardFor(key uint64) int {
	return int((key * 0x9e3779b97f4a7c15) >> 33 % uint64(len(db.shards)))
}

// routeRefs inspects the KRef values among vals and returns the owning shard
// they agree on: ok=false when no value constrains placement (no refs, or
// only replicated refs). Two refs owned by different shards, or a ref to an
// unknown OID, are errors. Caller holds at least db.mu.RLock.
func (db *DB) routeRefsLocked(vals []gomdb.Value) (int, bool, error) {
	shard, constrained := 0, false
	for _, v := range vals {
		if v.Kind != object.KRef {
			continue
		}
		own, ok := db.owner[v.R]
		if !ok {
			return 0, false, fmt.Errorf("%w: oid %v", ErrUnknownOID, v.R)
		}
		if own == replicated {
			continue
		}
		if constrained && own != shard {
			return 0, false, fmt.Errorf("%w: oid %v on shard %d, earlier ref on shard %d", ErrCrossShardRef, v.R, own, shard)
		}
		shard, constrained = own, true
	}
	return shard, constrained, nil
}

// checkRefsOnLocked verifies every KRef in vals is replicated or owned by
// shard sh. Caller holds at least db.mu.RLock.
func (db *DB) checkRefsOnLocked(sh int, vals []gomdb.Value) error {
	for _, v := range vals {
		if v.Kind != object.KRef {
			continue
		}
		own, ok := db.owner[v.R]
		if !ok {
			return fmt.Errorf("%w: oid %v", ErrUnknownOID, v.R)
		}
		if own != replicated && own != sh {
			return fmt.Errorf("%w: oid %v owned by shard %d, object placed on shard %d", ErrCrossShardRef, v.R, own, sh)
		}
	}
	return nil
}

// New creates a tuple-structured instance, placing it with the graph it
// references: the owner of the first routed reference among attrs wins; an
// unconstrained create (no refs, or only replicated refs) is placed by OID
// hash. References owned by two different shards are refused.
func (db *DB) New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	sh, constrained, err := db.routeRefsLocked(attrs)
	if err != nil {
		return 0, err
	}
	if !constrained {
		sh = db.ShardFor(uint64(db.alloc.PeekOID()))
	}
	return db.createLocked(sh, func(s *gomdb.Database) (gomdb.OID, error) {
		return s.New(typeName, attrs...)
	}, typeName)
}

// NewOn creates a tuple-structured instance on an explicit shard — the
// placement primitive for co-locating a graph before its internal references
// exist (create the vertices on shard s, then the cuboid referencing them).
func (db *DB) NewOn(sh int, typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkRefsOnLocked(sh, attrs); err != nil {
		return 0, err
	}
	return db.createLocked(sh, func(s *gomdb.Database) (gomdb.OID, error) {
		return s.New(typeName, attrs...)
	}, typeName)
}

// NewSet creates a set- or list-structured instance, routed like New.
func (db *DB) NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	sh, constrained, err := db.routeRefsLocked(elems)
	if err != nil {
		return 0, err
	}
	if !constrained {
		sh = db.ShardFor(uint64(db.alloc.PeekOID()))
	}
	return db.createLocked(sh, func(s *gomdb.Database) (gomdb.OID, error) {
		return s.NewSet(typeName, elems...)
	}, typeName)
}

// createLocked runs create against shard sh and records ownership. Caller
// holds db.mu exclusively (creates serialize through the router so the
// PeekOID-based placement and the owner table stay coherent).
func (db *DB) createLocked(sh int, create func(*gomdb.Database) (gomdb.OID, error), typeName string) (gomdb.OID, error) {
	oid, err := create(db.shards[sh])
	if err != nil {
		return 0, err
	}
	db.owner[oid] = sh
	db.partitioned[typeName] = true
	return oid, nil
}

// NewReplicated creates the object on every shard under the same OID — the
// replication primitive for shared reference data (materials, robots). The
// first shard allocates; each subsequent shard's allocation is pinned to the
// same OID, so one replicated create consumes exactly one OID regardless of
// shard count (charge parity across shard counts depends on this). All
// attrs references must themselves be replicated.
func (db *DB) NewReplicated(typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, v := range attrs {
		if v.Kind != object.KRef {
			continue
		}
		own, ok := db.owner[v.R]
		if !ok {
			return 0, fmt.Errorf("%w: oid %v", ErrUnknownOID, v.R)
		}
		if own != replicated {
			return 0, fmt.Errorf("%w: replicated object would reference oid %v owned by shard %d", ErrCrossShardRef, v.R, own)
		}
	}
	oid := db.alloc.PeekOID()
	for i, sh := range db.shards {
		if i > 0 {
			db.alloc.pin(oid)
		}
		got, err := sh.New(typeName, attrs...)
		if err != nil {
			return 0, fmt.Errorf("shard %d replica: %w", i, err)
		}
		if got != oid {
			return 0, fmt.Errorf("shard: replica OID skew: shard %d allocated %v, expected %v", i, got, oid)
		}
	}
	db.owner[oid] = replicated
	return oid, nil
}

// route resolves oid's shard for a point operation; a replicated object
// routes reads to shard 0.
func (db *DB) route(oid gomdb.OID) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	sh, ok := db.owner[oid]
	if !ok {
		return 0, fmt.Errorf("%w: oid %v", ErrUnknownOID, oid)
	}
	if sh == replicated {
		return 0, nil
	}
	return sh, nil
}

// Delete removes an object: point-routed to its owner, or broadcast to every
// replica in shard order for a replicated object.
func (db *DB) Delete(oid gomdb.OID) error {
	db.mu.Lock()
	sh, ok := db.owner[oid]
	if !ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: oid %v", ErrUnknownOID, oid)
	}
	delete(db.owner, oid)
	db.mu.Unlock()
	if sh == replicated {
		for i, s := range db.shards {
			if err := s.Delete(oid); err != nil {
				return fmt.Errorf("shard %d replica: %w", i, err)
			}
		}
		return nil
	}
	return db.shards[sh].Delete(oid)
}

// Set performs the elementary update oid.set_attr(v), point-routed to the
// owner — its RRR invalidation sweep runs on that shard alone. A replicated
// object's update broadcasts to every replica in shard order. A reference
// value must stay on the owner's shard (or be replicated).
func (db *DB) Set(oid gomdb.OID, attr string, v gomdb.Value) error {
	db.mu.RLock()
	sh, ok := db.owner[oid]
	if !ok {
		db.mu.RUnlock()
		return fmt.Errorf("%w: oid %v", ErrUnknownOID, oid)
	}
	var err error
	if sh == replicated {
		for _, ref := range []gomdb.Value{v} {
			if ref.Kind == object.KRef && db.owner[ref.R] != replicated {
				err = fmt.Errorf("%w: replicated object would reference routed oid %v", ErrCrossShardRef, ref.R)
			}
		}
	} else {
		err = db.checkRefsOnLocked(sh, []gomdb.Value{v})
	}
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	if sh == replicated {
		for i, s := range db.shards {
			if err := s.Set(oid, attr, v); err != nil {
				return fmt.Errorf("shard %d replica: %w", i, err)
			}
		}
		return nil
	}
	return db.shards[sh].Set(oid, attr, v)
}

// GetAttr reads attribute attr of oid from its owner (shard 0 for a
// replicated object — all replicas are identical).
func (db *DB) GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error) {
	sh, err := db.route(oid)
	if err != nil {
		return gomdb.Null(), err
	}
	return db.shards[sh].GetAttr(oid, attr)
}

// Insert performs set.insert(elem), point-routed to the set's owner.
func (db *DB) Insert(set gomdb.OID, elem gomdb.Value) error {
	sh, err := db.route(set)
	if err != nil {
		return err
	}
	db.mu.RLock()
	err = db.checkRefsOnLocked(sh, []gomdb.Value{elem})
	db.mu.RUnlock()
	if err != nil {
		return err
	}
	return db.shards[sh].Insert(set, elem)
}

// Remove performs set.remove(elem), point-routed to the set's owner.
func (db *DB) Remove(set gomdb.OID, elem gomdb.Value) error {
	sh, err := db.route(set)
	if err != nil {
		return err
	}
	return db.shards[sh].Remove(set, elem)
}

// Call invokes a declared function or operation, point-routed by its
// reference arguments: the owner of the first routed ref serves the call (a
// forward lookup then probes only that shard's GMR). Arguments owned by two
// different shards are refused; a call with no routed refs (literals,
// replicated objects) runs on shard 0.
func (db *DB) Call(fn string, args ...gomdb.Value) (gomdb.Value, error) {
	db.mu.RLock()
	sh, _, err := db.routeRefsLocked(args)
	db.mu.RUnlock()
	if err != nil {
		return gomdb.Null(), err
	}
	return db.shards[sh].Call(fn, args...)
}

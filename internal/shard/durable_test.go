package shard_test

import (
	"errors"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/shard"
)

func durableShardConfig(path string, n int) shard.Config {
	ecfg := gomdb.DefaultConfig()
	ecfg.Path = path
	ecfg.BufferPages = 4096
	ecfg.DefineSchema = func(db *gomdb.Database) error {
		return fixtures.DefineGeometry(db, false)
	}
	return shard.Config{Shards: n, Engine: ecfg}
}

// TestDurableShardedReopen: a durable sharded database survives a clean
// close — the reopened router rebuilds its routing table from the per-shard
// recovered state (owners, replicas), the data and GMRs come back, and the
// allocator is seeded past every recovered OID so new creates get fresh ids.
func TestDurableShardedReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := shard.OpenAt(durableShardConfig(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometrySharded(db, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	materializeStandard(t, db.Materialize)
	type owned struct {
		oid gomdb.OID
		sh  int
		vol float64
	}
	var want []owned
	var maxOID gomdb.OID
	for _, c := range g.Cuboids {
		sh, ok := db.Owner(c)
		if !ok {
			t.Fatalf("cuboid %v unowned", c)
		}
		v, err := db.Call("Cuboid.volume", gomdb.Ref(c))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, owned{c, sh, v.F})
		if c > maxOID {
			maxOID = c
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := shard.OpenAt(durableShardConfig(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, w := range want {
		sh, ok := db2.Owner(w.oid)
		if !ok || sh != w.sh {
			t.Fatalf("cuboid %v owner after reopen = %d,%v, want %d", w.oid, sh, ok, w.sh)
		}
		v, err := db2.Call("Cuboid.volume", gomdb.Ref(w.oid))
		if err != nil {
			t.Fatal(err)
		}
		if v.F != w.vol {
			t.Fatalf("volume(%v) after reopen = %v, want %v", w.oid, v.F, w.vol)
		}
	}
	// Replicated reference data is recognized as replicated (present on every
	// shard under the same OID).
	for _, m := range g.MaterialO {
		if sh, ok := db2.Owner(m); !ok || sh != -1 {
			t.Fatalf("material %v after reopen: owner %d,%v, want replicated", m, sh, ok)
		}
	}
	// A post-reopen create draws a fresh OID past everything recovered.
	v0, err := db2.GetAttr(g.Cuboids[0], "V1")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db2.New("Robot", gomdb.Str("reborn"), v0)
	if err != nil {
		t.Fatal(err)
	}
	if oid <= maxOID {
		t.Fatalf("post-reopen create got OID %v, want > %v", oid, maxOID)
	}
	rep, err := db2.CheckConsistency("Gvw", 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 || rep.Invalid != 0 {
		t.Fatalf("Gvw inconsistent after reopen: %+v", rep)
	}

	// Reopening with a different shard count is refused.
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.OpenAt(durableShardConfig(dir, 3)); !errors.Is(err, shard.ErrShardCountMismatch) {
		t.Fatalf("reopen with 3 shards: got %v, want ErrShardCountMismatch", err)
	}
}

// TestDurableShardedCrashRecovery: after a hard crash, every shard recovers
// to its own last checkpoint, uncheckpointed work is lost, and the rebuilt
// routing table and allocator reflect what actually survived.
func TestDurableShardedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := shard.OpenAt(durableShardConfig(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometrySharded(db, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	materializeStandard(t, db.Materialize)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	checkpointed := len(g.Cuboids)
	// Uncheckpointed work: more cuboid graphs after the checkpoint.
	for i := 0; i < 4; i++ {
		if _, err := g.CreateRandomCuboid(); err != nil {
			t.Fatal(err)
		}
	}
	lost := g.Cuboids[checkpointed:]
	db.Crash()

	db2, err := shard.OpenAt(durableShardConfig(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, c := range g.Cuboids[:checkpointed] {
		if _, ok := db2.Owner(c); !ok {
			t.Fatalf("checkpointed cuboid %v lost in crash", c)
		}
	}
	for _, c := range lost {
		if _, ok := db2.Owner(c); ok {
			t.Fatalf("uncheckpointed cuboid %v survived crash", c)
		}
	}
	rep, err := db2.CheckConsistency("Gvw", 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 || rep.Invalid != 0 {
		t.Fatalf("Gvw inconsistent after crash recovery: %+v", rep)
	}
	// The allocator was re-seeded from recovered state: a new create must
	// not collide with any surviving OID.
	v0, err := db2.GetAttr(g.Cuboids[0], "V1")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := db2.New("Robot", gomdb.Str("phoenix"), v0)
	if err != nil {
		t.Fatal(err)
	}
	if sh, ok := db2.Owner(oid); !ok || sh == -1 {
		t.Fatalf("post-crash create %v owner %d,%v", oid, sh, ok)
	}
}

package shard_test

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/shard"
)

func openSharded(t *testing.T, n int) *shard.DB {
	t.Helper()
	db := shard.Open(shard.Config{
		Shards: n,
		Engine: gomdb.Config{BufferPages: 4096},
	})
	if err := fixtures.DefineGeometrySharded(db, false); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRoutingAndCoLocation(t *testing.T) {
	db := openSharded(t, 4)
	g, err := fixtures.PopulateGeometrySharded(db, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Every cuboid graph is co-located: the cuboid and its 8 vertices share
	// an owner.
	for _, c := range g.Cuboids {
		own, ok := db.Owner(c)
		if !ok {
			t.Fatalf("cuboid %v unowned", c)
		}
		for _, attr := range []string{"V1", "V2", "V3", "V4", "V5", "V6", "V7", "V8"} {
			v, err := db.GetAttr(c, attr)
			if err != nil {
				t.Fatal(err)
			}
			vo, ok := db.Owner(v.R)
			if !ok || vo != own {
				t.Fatalf("cuboid %v on shard %d, its %s on shard %d", c, own, attr, vo)
			}
		}
	}
	// The population actually spread across shards.
	used := map[int]bool{}
	for _, c := range g.Cuboids {
		own, _ := db.Owner(c)
		used[own] = true
	}
	if len(used) < 2 {
		t.Fatalf("population used %d shards, want >= 2", len(used))
	}
	// A reference crossing shards is refused.
	var s0, s1 gomdb.OID
	for _, c := range g.Cuboids {
		own, _ := db.Owner(c)
		if own == 0 && s0 == 0 {
			s0 = c
		}
		if own == 1 && s1 == 0 {
			s1 = c
		}
	}
	if s0 == 0 || s1 == 0 {
		t.Skip("hash placed no cuboids on shards 0 and 1")
	}
	v1, err := db.GetAttr(s1, "V1")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Set(s0, "V1", v1); !errors.Is(err, shard.ErrCrossShardRef) {
		t.Fatalf("cross-shard Set: got %v, want ErrCrossShardRef", err)
	}
	if _, err := db.New("Robot", gomdb.Str("X"), gomdb.Ref(42424242)); !errors.Is(err, shard.ErrUnknownOID) {
		t.Fatalf("unknown ref: got %v, want ErrUnknownOID", err)
	}
	// New with a routed ref lands on the ref's shard.
	own0, _ := db.Owner(s0)
	v0, _ := db.GetAttr(s0, "V1")
	r, err := db.New("Robot", gomdb.Str("RX"), v0)
	if err != nil {
		t.Fatal(err)
	}
	if ro, _ := db.Owner(r); ro != own0 {
		t.Fatalf("affinity create landed on shard %d, ref owner is %d", ro, own0)
	}
}

func TestReplicatedObjects(t *testing.T) {
	db := openSharded(t, 3)
	mat, err := db.NewReplicated("Material", gomdb.Str("Iron"), gomdb.Float(7.86))
	if err != nil {
		t.Fatal(err)
	}
	if own, ok := db.Owner(mat); !ok || own != -1 {
		t.Fatalf("replicated owner = %d, %v", own, ok)
	}
	// Every shard holds the replica under the same OID.
	if err := db.EachShard(func(i int, sh *gomdb.Database) error {
		v, err := sh.GetAttr(mat, "SpecWeight")
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if v.F != 7.86 {
			return fmt.Errorf("shard %d: SpecWeight %v", i, v.F)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Updates broadcast to all replicas.
	if err := db.Set(mat, "SpecWeight", gomdb.Float(8.0)); err != nil {
		t.Fatal(err)
	}
	_ = db.EachShard(func(i int, sh *gomdb.Database) error {
		v, _ := sh.GetAttr(mat, "SpecWeight")
		if v.F != 8.0 {
			t.Errorf("shard %d missed broadcast: %v", i, v.F)
		}
		return nil
	})
	// The scattered extension reports the replica once.
	exts := db.Extension("Material")
	if len(exts) != 1 || exts[0] != mat {
		t.Fatalf("Extension dedup: %v", exts)
	}
	// A replicated object may not reference a routed one.
	v, err := db.NewOn(1, "Vertex", gomdb.Float(1), gomdb.Float(2), gomdb.Float(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewReplicated("Robot", gomdb.Str("R"), gomdb.Ref(v)); !errors.Is(err, shard.ErrCrossShardRef) {
		t.Fatalf("replicated->routed ref: got %v, want ErrCrossShardRef", err)
	}
	// Delete broadcasts.
	if err := db.Delete(mat); err != nil {
		t.Fatal(err)
	}
	if got := db.Extension("Material"); len(got) != 0 {
		t.Fatalf("replica survived delete: %v", got)
	}
}

// materializeStandard creates the volume+weight GMR (immediate) and the
// distance GMR (deferred) on every engine of the configuration.
func materializeStandard(t *testing.T, mat func(gomdb.MaterializeOptions) error) {
	t.Helper()
	if err := mat(gomdb.MaterializeOptions{
		Name: "Gvw", Funcs: []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true, Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep, UseMDS: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := mat(gomdb.MaterializeOptions{
		Name: "Gdist", Funcs: []string{"Cuboid.distance"},
		Complete: true, Strategy: gomdb.Deferred, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestScatterMatchesUnsharded: the same logical plan against a 4-shard
// router and a plain single-engine database yields identical results for
// every scatter operation (modulo float addition order in aggregates and
// row order across shards).
func TestScatterMatchesUnsharded(t *testing.T) {
	const n, seed = 60, 23

	ref := gomdb.Open(gomdb.Config{BufferPages: 4096})
	if err := fixtures.DefineGeometry(ref, false); err != nil {
		t.Fatal(err)
	}
	rg, err := fixtures.PopulateGeometry(ref, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	materializeStandard(t, func(o gomdb.MaterializeOptions) error {
		_, err := ref.Materialize(o)
		return err
	})

	db := openSharded(t, 4)
	sg, err := fixtures.PopulateGeometrySharded(db, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	materializeStandard(t, db.Materialize)

	// Identical OIDs: the shared allocator and identical creation order make
	// the sharded population OID-compatible with the unsharded one.
	for i := range rg.Cuboids {
		if rg.Cuboids[i] != sg.Cuboids[i] {
			t.Fatalf("cuboid %d: OID %v (unsharded) vs %v (sharded)", i, rg.Cuboids[i], sg.Cuboids[i])
		}
	}

	// Forward: every cuboid's volume matches.
	for _, c := range rg.Cuboids {
		want, err := ref.Call("Cuboid.volume", gomdb.Ref(c))
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.Call("Cuboid.volume", gomdb.Ref(c))
		if err != nil {
			t.Fatal(err)
		}
		if got.F != want.F {
			t.Fatalf("volume(%v): %v vs %v", c, got.F, want.F)
		}
	}

	// Backward: merged in result order, identical rows.
	wantB, err := ref.Backward("Cuboid.volume", 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := db.Backward("Cuboid.volume", 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotB) != len(wantB) {
		t.Fatalf("backward: %d vs %d matches", len(gotB), len(wantB))
	}
	for i := range wantB {
		if gotB[i].Args[0].R != wantB[i].Args[0].R || gotB[i].Result.F != wantB[i].Result.F {
			t.Fatalf("backward row %d: %v=%v vs %v=%v", i,
				gotB[i].Args[0].R, gotB[i].Result.F, wantB[i].Args[0].R, wantB[i].Result.F)
		}
	}

	// Sum: partials add to the same total (float order tolerance).
	wantS, err := ref.Sum("Cuboid.weight", nil)
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := db.Sum("Cuboid.weight", nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotS-wantS) > 1e-6*math.Abs(wantS) {
		t.Fatalf("sum: %v vs %v", gotS, wantS)
	}

	// Tabular: same row set (order canonicalized by first-arg OID).
	spec := []gomdb.FieldSpec{gomdb.AnySpec(), gomdb.RangeSpec(100, 400), gomdb.AnySpec()}
	wantR, err := ref.Retrieve("Gvw", spec)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := db.Retrieve("Gvw", spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotR) != len(wantR) {
		t.Fatalf("retrieve: %d vs %d rows", len(gotR), len(wantR))
	}
	key := func(r gomdb.Row) gomdb.OID { return r.Args[0].R }
	sort.Slice(wantR, func(i, j int) bool { return key(wantR[i]) < key(wantR[j]) })
	sort.Slice(gotR, func(i, j int) bool { return key(gotR[i]) < key(gotR[j]) })
	for i := range wantR {
		if key(gotR[i]) != key(wantR[i]) || gotR[i].Results[0].F != wantR[i].Results[0].F {
			t.Fatalf("retrieve row %d differs", i)
		}
	}

	// Extension: same OID set.
	wantE := append([]gomdb.OID(nil), ref.Extension("Cuboid")...)
	gotE := append([]gomdb.OID(nil), db.Extension("Cuboid")...)
	sort.Slice(wantE, func(i, j int) bool { return wantE[i] < wantE[j] })
	sort.Slice(gotE, func(i, j int) bool { return gotE[i] < gotE[j] })
	if len(gotE) != len(wantE) {
		t.Fatalf("extension: %d vs %d", len(gotE), len(wantE))
	}
	for i := range wantE {
		if gotE[i] != wantE[i] {
			t.Fatalf("extension[%d]: %v vs %v", i, gotE[i], wantE[i])
		}
	}

	// GOMql aggregates combine across shards.
	for _, q := range []string{
		"range c: Cuboid retrieve count(c.volume)",
		"range c: Cuboid retrieve sum(c.volume)",
		"range c: Cuboid retrieve min(c.volume), max(c.volume)",
	} {
		want, err := ref.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.Query(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		for col := range want.Rows[0] {
			w, g := want.Rows[0][col], got.Rows[0][col]
			if w.Kind != g.Kind {
				t.Fatalf("%s col %d: kind %v vs %v", q, col, g.Kind, w.Kind)
			}
			if w.Kind == gomdb.Float(0).Kind && math.Abs(g.F-w.F) > 1e-6*math.Abs(w.F) {
				t.Fatalf("%s col %d: %v vs %v", q, col, g.F, w.F)
			}
			if w.Kind == gomdb.Int(0).Kind && g.I != w.I {
				t.Fatalf("%s col %d: %v vs %v", q, col, g.I, w.I)
			}
		}
	}

	// Plain GOMql rows: same set.
	wantQ, err := ref.Query("range c: Cuboid retrieve c.volume where c.volume > $v", map[string]gomdb.Value{"v": gomdb.Float(300)})
	if err != nil {
		t.Fatal(err)
	}
	gotQ, err := db.Query("range c: Cuboid retrieve c.volume where c.volume > $v", map[string]gomdb.Value{"v": gomdb.Float(300)})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotQ.Rows) != len(wantQ.Rows) {
		t.Fatalf("query rows: %d vs %d", len(gotQ.Rows), len(wantQ.Rows))
	}

	// Consistency audit merges across shards.
	rep, err := db.CheckConsistency("Gvw", 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 || rep.Entries != n {
		t.Fatalf("consistency: %+v", rep)
	}
}

func TestQueryRefusals(t *testing.T) {
	db := openSharded(t, 2)
	if _, err := fixtures.PopulateGeometrySharded(db, 8, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("range c: Cuboid retrieve avg(c.volume)", nil); !errors.Is(err, shard.ErrNotCombinable) {
		t.Fatalf("avg: got %v, want ErrNotCombinable", err)
	}
	if _, err := db.Query("range c: Cuboid materialize c.volume", nil); !errors.Is(err, shard.ErrNotReadOnly) {
		t.Fatalf("materialize stmt: got %v, want ErrNotReadOnly", err)
	}
}

func TestMultiPartitionedArgsRefused(t *testing.T) {
	db := openSharded(t, 2)
	g, err := fixtures.PopulateGeometrySharded(db, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	// Robots are replicated: Cuboid x Robot materializes shard-locally.
	if err := db.Materialize(gomdb.MaterializeOptions{
		Name: "Gdist", Funcs: []string{"Cuboid.distance"},
		Complete: true, Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Dematerialize("Gdist"); err != nil {
		t.Fatal(err)
	}
	// A routed robot makes Robot a partitioned type: two partitioned
	// argument extensions cannot be crossed.
	pos, err := db.NewOn(0, "Vertex", gomdb.Float(0), gomdb.Float(0), gomdb.Float(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewOn(0, "Robot", gomdb.Str("routed"), gomdb.Ref(pos)); err != nil {
		t.Fatal(err)
	}
	err = db.Materialize(gomdb.MaterializeOptions{
		Name: "Gdist2", Funcs: []string{"Cuboid.distance"},
		Complete: true, Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if !errors.Is(err, shard.ErrPartitionedArgs) {
		t.Fatalf("two partitioned args: got %v, want ErrPartitionedArgs", err)
	}
}

func TestBatchRouting(t *testing.T) {
	db := openSharded(t, 3)
	g, err := fixtures.PopulateGeometrySharded(db, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	materializeStandard(t, db.Materialize)
	target := g.Cuboids[0]
	err = db.Batch(func(tx *shard.Tx) error {
		if err := tx.Set(target, "Value", gomdb.Float(999)); err != nil {
			return err
		}
		// A create inside the batch routes by affinity.
		v, err := tx.GetAttr(target, "V1")
		if err != nil {
			return err
		}
		if _, err := tx.New("Robot", gomdb.Str("batchbot"), v); err != nil {
			return err
		}
		// And a cross-shard write inside the batch is still refused.
		other := gomdb.OID(0)
		for _, c := range g.Cuboids {
			o1, _ := tx.Owner(c)
			o2, _ := tx.Owner(target)
			if o1 != o2 {
				other = c
				break
			}
		}
		if other != 0 {
			ov, err := tx.GetAttr(other, "V1")
			if err != nil {
				return err
			}
			if err := tx.Set(target, "V2", ov); !errors.Is(err, shard.ErrCrossShardRef) {
				return fmt.Errorf("batch cross-shard Set: got %v", err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.GetAttr(target, "Value")
	if err != nil || v.F != 999 {
		t.Fatalf("batch write lost: %v, %v", v, err)
	}
	// The batch was a flush point: the deferred Gdist GMR is quiescent and
	// consistent on every shard.
	rep, err := db.CheckConsistency("Gdist", 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("post-batch consistency: %v", rep.Violations)
	}
}

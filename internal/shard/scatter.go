package shard

import (
	"fmt"
	"sort"
	"sync"

	"gomdb"
	"gomdb/internal/object"
	"gomdb/internal/query"
)

// Scatter reads fan out to every shard in parallel goroutines — each engine
// answers from its own buffer pool under its own shared lock (or an MVCC
// snapshot when a local writer holds it) — and the router merges the
// partials. Merge rules are deterministic and reduce to the identity at
// shards=1, so the single-shard configuration stays byte-identical to the
// unsharded engine:
//
//   - Backward: concatenate in shard-index order, then stable-sort by the
//     stored result value. Each shard's B+ tree already yields its partial
//     in result order, so the merge restores global key order and a single
//     shard's output passes through unchanged.
//   - Retrieve / Extension: concatenate in shard-index order (Extension
//     additionally drops duplicate OIDs, which replicated objects produce —
//     the first occurrence wins).
//   - Sum / GOMql aggregates: combine per-shard partials in shard-index
//     order (sum and count add, min and max compare; avg is refused — a
//     per-shard average cannot be reweighted).
//
// scatter runs fn against every shard concurrently and returns the partials
// indexed by shard. The first error (lowest shard index) wins.
func (db *DB) scatter(fn func(i int, sh *gomdb.Database) (any, error)) ([]any, error) {
	parts := make([]any, len(db.shards))
	errs := make([]error, len(db.shards))
	var wg sync.WaitGroup
	for i, sh := range db.shards {
		wg.Add(1)
		go func(i int, sh *gomdb.Database) {
			defer wg.Done()
			parts[i], errs[i] = fn(i, sh)
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// Backward answers a backward query — every materialized argument
// combination whose stored result lies in [lb, ub] — by scattering to all
// shards and merging in result order.
func (db *DB) Backward(fid string, lb, ub float64) ([]gomdb.Match, error) {
	parts, err := db.scatter(func(_ int, sh *gomdb.Database) (any, error) {
		return sh.Backward(fid, lb, ub)
	})
	if err != nil {
		return nil, err
	}
	var out []gomdb.Match
	for _, p := range parts {
		out = append(out, p.([]gomdb.Match)...)
	}
	// Stable: ties keep shard-index order, so shards=1 is the identity.
	sort.SliceStable(out, func(i, j int) bool {
		a, _ := out[i].Result.AsFloat()
		b, _ := out[j].Result.AsFloat()
		return a < b
	})
	return out, nil
}

// Sum aggregates a materialized function: nil oids sums every materialized
// entry on every shard; explicit oids are grouped by owner and each group
// summed locally. Partials add in shard-index order.
func (db *DB) Sum(fid string, oids []gomdb.OID) (float64, error) {
	groups := make([][]gomdb.OID, len(db.shards))
	if oids == nil {
		// nil group = "all entries" per shard; replicas hold disjoint entry
		// sets for partitioned-argument GMRs, so the union is exact.
		for i := range groups {
			groups[i] = nil
		}
	} else {
		db.mu.RLock()
		for _, oid := range oids {
			own, ok := db.owner[oid]
			if !ok {
				db.mu.RUnlock()
				return 0, fmt.Errorf("%w: oid %v", ErrUnknownOID, oid)
			}
			if own == replicated {
				own = 0
			}
			groups[own] = append(groups[own], oid)
		}
		db.mu.RUnlock()
	}
	parts, err := db.scatter(func(i int, sh *gomdb.Database) (any, error) {
		if oids != nil && len(groups[i]) == 0 {
			return 0.0, nil
		}
		return sh.Sum(fid, groups[i])
	})
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, p := range parts {
		total += p.(float64)
	}
	return total, nil
}

// Retrieve answers a tabular GMR query, concatenating per-shard rows in
// shard-index order.
func (db *DB) Retrieve(gmrName string, spec []gomdb.FieldSpec) ([]gomdb.Row, error) {
	parts, err := db.scatter(func(_ int, sh *gomdb.Database) (any, error) {
		return sh.Retrieve(gmrName, spec)
	})
	if err != nil {
		return nil, err
	}
	var out []gomdb.Row
	for _, p := range parts {
		out = append(out, p.([]gomdb.Row)...)
	}
	return out, nil
}

// Extension returns the OIDs of all instances of typeName across shards,
// concatenated in shard-index order with replicated duplicates dropped
// (first occurrence wins). The union is the complete sharded extension:
// every routed object lives on exactly one shard.
func (db *DB) Extension(typeName string) []gomdb.OID {
	parts, _ := db.scatter(func(_ int, sh *gomdb.Database) (any, error) {
		return sh.Extension(typeName), nil
	})
	var out []gomdb.OID
	seen := make(map[gomdb.OID]bool)
	for _, p := range parts {
		for _, oid := range p.([]gomdb.OID) {
			if !seen[oid] {
				seen[oid] = true
				out = append(out, oid)
			}
		}
	}
	return out
}

// CheckConsistency audits the named GMR on every shard in parallel and
// merges the per-shard reports (entry counts add, violations concatenate in
// shard-index order, prefixed with the shard).
func (db *DB) CheckConsistency(gmrName string, tol float64, checkComplete bool) (*gomdb.ConsistencyReport, error) {
	parts, err := db.scatter(func(_ int, sh *gomdb.Database) (any, error) {
		return sh.CheckConsistency(gmrName, tol, checkComplete)
	})
	if err != nil {
		return nil, err
	}
	merged := &gomdb.ConsistencyReport{GMR: gmrName}
	for i, p := range parts {
		r := p.(*gomdb.ConsistencyReport)
		merged.Entries += r.Entries
		merged.Valid += r.Valid
		merged.Invalid += r.Invalid
		for _, v := range r.Violations {
			merged.Violations = append(merged.Violations, fmt.Sprintf("shard %d: %s", i, v))
		}
	}
	return merged, nil
}

// Query executes a read-classified GOMql retrieve statement: the statement
// runs on every shard in parallel and the partial results merge under the
// aggregate-aware rules above. Statements the classifier cannot prove
// read-only — and the materialize statement — are refused with a typed
// error; sharded writes go through the typed API, which can route them.
func (db *DB) Query(src string, params map[string]gomdb.Value) (*gomdb.QueryResult, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Kind == query.MaterializeStmt {
		return nil, fmt.Errorf("%w: materialize statement (use DB.Materialize)", ErrNotReadOnly)
	}
	// Classification reads schema metadata only, identical on every shard.
	if !db.shards[0].Queries.ReadOnlyPlan(q) {
		return nil, ErrNotReadOnly
	}
	for _, t := range q.Targets {
		if t.Agg == "avg" {
			return nil, ErrNotCombinable
		}
	}
	parts, err := db.scatter(func(_ int, sh *gomdb.Database) (any, error) {
		return sh.Query(src, params)
	})
	if err != nil {
		return nil, err
	}
	results := make([]*gomdb.QueryResult, len(parts))
	for i, p := range parts {
		results[i] = p.(*gomdb.QueryResult)
	}
	return mergeQueryResults(q, results)
}

// mergeQueryResults combines per-shard GOMql results: plain rows concatenate
// in shard-index order; aggregate statements (one row per shard) combine per
// target — sum and count add, min and max compare, Nulls from empty shards
// are skipped.
func mergeQueryResults(q *query.Query, results []*gomdb.QueryResult) (*gomdb.QueryResult, error) {
	merged := &gomdb.QueryResult{Columns: results[0].Columns}
	hasAgg := len(q.Targets) > 0 && q.Targets[0].Agg != ""
	if !hasAgg {
		for _, r := range results {
			merged.Rows = append(merged.Rows, r.Rows...)
		}
		return merged, nil
	}
	row := make([]gomdb.Value, len(q.Targets))
	for col, t := range q.Targets {
		acc := gomdb.Null()
		for _, r := range results {
			v := r.Rows[0][col]
			if v.IsNull() {
				continue // empty shard (min/max over nothing)
			}
			if acc.IsNull() {
				acc = v
				continue
			}
			switch t.Agg {
			case "sum":
				acc = gomdb.Float(acc.F + v.F)
			case "count":
				acc = gomdb.Int(acc.I + v.I)
			case "min":
				if v.F < acc.F {
					acc = v
				}
			case "max":
				if v.F > acc.F {
					acc = v
				}
			default:
				return nil, fmt.Errorf("%w: %s", ErrNotCombinable, t.Agg)
			}
		}
		if acc.IsNull() && t.Agg == "count" {
			acc = gomdb.Int(0)
		}
		row[col] = acc
	}
	merged.Rows = [][]object.Value{row}
	return merged, nil
}

// Snapshot returns the merged simulated-work counters: the field-wise sum of
// every shard's clock. Charges accrue per shard (each engine charges its own
// clock), and the sum is the configuration-independent total the charge-
// parity tests compare across shard counts.
func (db *DB) Snapshot() gomdb.Clock {
	var total gomdb.Clock
	for _, sh := range db.shards {
		c := sh.Snapshot()
		total.PhysReads += c.PhysReads
		total.PhysWrites += c.PhysWrites
		total.LogReads += c.LogReads
		total.LogWrites += c.LogWrites
		total.CPUOps += c.CPUOps
		total.IOCostMicros = c.IOCostMicros
		total.CPUCostMicros = c.CPUCostMicros
	}
	return total
}

// SimSeconds returns the merged simulated seconds across all shards.
func (db *DB) SimSeconds() float64 {
	total := db.Snapshot()
	return total.SimSeconds()
}

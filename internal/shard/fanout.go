package shard

import (
	"fmt"

	"gomdb"
	"gomdb/internal/object"
)

// Write fan-outs run SEQUENTIALLY in shard-index order, never in parallel.
// This is a determinism requirement, not a simplification: deferred
// rematerialization allocates result objects from the shared OID allocator,
// so a parallel fan-out would interleave allocations nondeterministically
// and break the OID identity (and hence charge parity) across runs and
// shard counts. Each shard's call takes that shard's own write barrier; the
// other shards keep serving reads until their turn.

// Schema DDL replicates to every shard: each engine holds the full schema,
// so any shard can classify, dispatch, and compute any function over the
// objects it owns.

// DefineType registers a type on every shard.
func (db *DB) DefineType(t *gomdb.Type, publicNames ...string) error {
	for i, sh := range db.shards {
		if err := sh.DefineType(t, publicNames...); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// MustDefineType is DefineType, panicking on error.
func (db *DB) MustDefineType(t *gomdb.Type, publicNames ...string) {
	if err := db.DefineType(t, publicNames...); err != nil {
		panic(err)
	}
}

// DefineOp registers a type-associated operation on every shard.
func (db *DB) DefineOp(typeName, opName string, fn *gomdb.Function) error {
	for i, sh := range db.shards {
		if err := sh.DefineOp(typeName, opName, fn); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// MustDefineOp is DefineOp, panicking on error.
func (db *DB) MustDefineOp(typeName, opName string, fn *gomdb.Function) {
	if err := db.DefineOp(typeName, opName, fn); err != nil {
		panic(err)
	}
}

// DefineFunc registers a free function on every shard.
func (db *DB) DefineFunc(fn *gomdb.Function) error {
	for i, sh := range db.shards {
		if err := sh.DefineFunc(fn); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Materialize creates the GMR on every shard: each shard precomputes over
// the argument objects it owns, so the per-shard extensions partition the
// logical GMR and scatter queries union them without duplicates. At most
// one argument type may be partitioned — the cross product of two routed
// extensions would need argument combinations no single shard can see;
// replicate all but one argument extension instead (the geometry schema
// replicates robots so Cuboid×Robot materializes shard-locally).
func (db *DB) Materialize(opts gomdb.MaterializeOptions) error {
	if err := db.checkPartitionedArgs(opts); err != nil {
		return err
	}
	for i, sh := range db.shards {
		if _, err := sh.Materialize(opts); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// checkPartitionedArgs counts partitioned argument types of the functions to
// materialize (subtype extensions included — materialization ranges over
// them). Schema metadata is identical on every shard; shard 0's copy
// answers.
func (db *DB) checkPartitionedArgs(opts gomdb.MaterializeOptions) error {
	sch := db.shards[0].Schema
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, fname := range opts.Funcs {
		var fn *gomdb.Function
		if i := indexByte(fname, '.'); i >= 0 {
			f, ok := sch.ResolveOp(fname[:i], fname[i+1:])
			if !ok {
				continue // Materialize itself reports the unknown function
			}
			fn = f
		} else {
			f, ok := sch.ResolveStatic(fname)
			if !ok {
				continue
			}
			fn = f
		}
		routed := 0
		for _, pt := range fn.ParamTypes() {
			for _, tn := range sch.Reg.WithSubtypes(pt) {
				if db.partitioned[tn] {
					routed++
					break
				}
			}
		}
		if routed > 1 {
			return fmt.Errorf("%w: %s", ErrPartitionedArgs, fname)
		}
	}
	return nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Dematerialize drops the named GMR on every shard.
func (db *DB) Dematerialize(name string) error {
	for i, sh := range db.shards {
		if err := sh.Dematerialize(name); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Flush drains every shard's deferred-rematerialization queue in shard
// order (a checkpoint point per shard on durable databases). The router
// metadata is saved first so recovery never sees a shard checkpoint whose
// OIDs outrun the router's allocator floor.
func (db *DB) Flush() error {
	if err := db.saveMeta(); err != nil {
		return err
	}
	for i, sh := range db.shards {
		if err := sh.Flush(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Checkpoint makes every shard's state durable: the router metadata
// (allocator floor, partitioned types) commits first, then each shard
// checkpoints in shard order. There is no cross-shard atomic commit — a
// crash mid-fan-out leaves shards at different checkpoint horizons, which
// recovery tolerates (see durable.go).
func (db *DB) Checkpoint() error {
	if err := db.saveMeta(); err != nil {
		return err
	}
	for i, sh := range db.shards {
		if err := sh.Checkpoint(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Recluster runs the trace-driven clustering pass on every shard, returning
// the merged relocation report.
func (db *DB) Recluster() (*gomdb.ReclusterReport, error) {
	merged := &gomdb.ReclusterReport{}
	for i, sh := range db.shards {
		r, err := sh.Recluster()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		merged.Objects += r.Objects
		merged.Moved += r.Moved
		merged.HotObjects += r.HotObjects
		merged.Hubs += r.Hubs
		merged.Chains += r.Chains
		merged.Edges += r.Edges
		merged.Traces += r.Traces
		merged.PagesBefore += r.PagesBefore
		merged.PagesAfter += r.PagesAfter
	}
	return merged, nil
}

// Close flushes and closes every shard (router metadata first).
func (db *DB) Close() error {
	err := db.saveMeta()
	for i, sh := range db.shards {
		if cerr := sh.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("shard %d: %w", i, cerr)
		}
	}
	return err
}

// Crash abandons every shard's durable store without checkpointing — the
// whole-process crash. Durable state stays at each shard's last committed
// checkpoint.
func (db *DB) Crash() {
	for _, sh := range db.shards {
		sh.Crash()
	}
}

// SetTrace installs fn as every shard's GMR maintenance trace hook.
func (db *DB) SetTrace(fn func(gomdb.TraceEvent)) {
	for _, sh := range db.shards {
		sh.SetTrace(fn)
	}
}

// Tx is the batch-update handle for a coordinated multi-shard batch: it
// routes each operation to the owner shard's open batch, with the same
// placement rules as the router's top-level methods. The batch holds the
// router's routing lock for its whole extent (see Batch), so Tx methods
// touch the owner table without locking; a Tx must not escape its batch
// function and is not safe for concurrent use.
type Tx struct {
	db  *DB
	txs []*gomdb.Tx
}

// New creates a tuple-structured instance inside the batch, placed like
// DB.New (reference affinity, else OID hash).
func (tx *Tx) New(typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	db := tx.db
	sh, constrained, err := db.routeRefsLocked(attrs)
	if err != nil {
		return 0, err
	}
	if !constrained {
		sh = db.ShardFor(uint64(db.alloc.PeekOID()))
	}
	oid, err := tx.txs[sh].New(typeName, attrs...)
	if err != nil {
		return 0, err
	}
	db.owner[oid] = sh
	db.partitioned[typeName] = true
	return oid, nil
}

// NewOn creates a tuple-structured instance on an explicit shard inside the
// batch (DB.NewOn).
func (tx *Tx) NewOn(sh int, typeName string, attrs ...gomdb.Value) (gomdb.OID, error) {
	db := tx.db
	if err := db.checkRefsOnLocked(sh, attrs); err != nil {
		return 0, err
	}
	oid, err := tx.txs[sh].New(typeName, attrs...)
	if err != nil {
		return 0, err
	}
	db.owner[oid] = sh
	db.partitioned[typeName] = true
	return oid, nil
}

// NewSet creates a set-structured instance inside the batch, placed like
// DB.NewSet (element-reference affinity, else OID hash).
func (tx *Tx) NewSet(typeName string, elems ...gomdb.Value) (gomdb.OID, error) {
	db := tx.db
	sh, constrained, err := db.routeRefsLocked(elems)
	if err != nil {
		return 0, err
	}
	if !constrained {
		sh = db.ShardFor(uint64(db.alloc.PeekOID()))
	}
	oid, err := tx.txs[sh].NewSet(typeName, elems...)
	if err != nil {
		return 0, err
	}
	db.owner[oid] = sh
	db.partitioned[typeName] = true
	return oid, nil
}

// Delete removes an object inside the batch (DB.Delete).
func (tx *Tx) Delete(oid gomdb.OID) error {
	db := tx.db
	sh, ok := db.owner[oid]
	if !ok {
		return fmt.Errorf("%w: oid %v", ErrUnknownOID, oid)
	}
	delete(db.owner, oid)
	if sh == replicated {
		for i, t := range tx.txs {
			if err := t.Delete(oid); err != nil {
				return fmt.Errorf("shard %d replica: %w", i, err)
			}
		}
		return nil
	}
	return tx.txs[sh].Delete(oid)
}

// Set performs an elementary update inside the batch (DB.Set).
func (tx *Tx) Set(oid gomdb.OID, attr string, v gomdb.Value) error {
	db := tx.db
	sh, ok := db.owner[oid]
	if !ok {
		return fmt.Errorf("%w: oid %v", ErrUnknownOID, oid)
	}
	if sh == replicated {
		if v.Kind == object.KRef && db.owner[v.R] != replicated {
			return fmt.Errorf("%w: replicated object would reference routed oid %v", ErrCrossShardRef, v.R)
		}
		for i, t := range tx.txs {
			if err := t.Set(oid, attr, v); err != nil {
				return fmt.Errorf("shard %d replica: %w", i, err)
			}
		}
		return nil
	}
	if err := db.checkRefsOnLocked(sh, []gomdb.Value{v}); err != nil {
		return err
	}
	return tx.txs[sh].Set(oid, attr, v)
}

// GetAttr reads an attribute inside the batch (DB.GetAttr).
func (tx *Tx) GetAttr(oid gomdb.OID, attr string) (gomdb.Value, error) {
	sh, ok := tx.db.owner[oid]
	if !ok {
		return gomdb.Null(), fmt.Errorf("%w: oid %v", ErrUnknownOID, oid)
	}
	if sh == replicated {
		sh = 0
	}
	return tx.txs[sh].GetAttr(oid, attr)
}

// Owner reports oid's owning shard inside the batch (DB.Owner). The batch
// holds the routing lock, so DB.Owner would self-deadlock here.
func (tx *Tx) Owner(oid gomdb.OID) (int, bool) {
	sh, ok := tx.db.owner[oid]
	return sh, ok
}

// Insert performs set.insert(elem) inside the batch (DB.Insert).
func (tx *Tx) Insert(set gomdb.OID, elem gomdb.Value) error {
	sh, ok := tx.db.owner[set]
	if !ok {
		return fmt.Errorf("%w: oid %v", ErrUnknownOID, set)
	}
	if sh == replicated {
		sh = 0
	}
	if err := tx.db.checkRefsOnLocked(sh, []gomdb.Value{elem}); err != nil {
		return err
	}
	return tx.txs[sh].Insert(set, elem)
}

// Remove performs set.remove(elem) inside the batch (DB.Remove).
func (tx *Tx) Remove(set gomdb.OID, elem gomdb.Value) error {
	sh, ok := tx.db.owner[set]
	if !ok {
		return fmt.Errorf("%w: oid %v", ErrUnknownOID, set)
	}
	if sh == replicated {
		sh = 0
	}
	return tx.txs[sh].Remove(set, elem)
}

// Call invokes a function inside the batch, routed like DB.Call.
func (tx *Tx) Call(fn string, args ...gomdb.Value) (gomdb.Value, error) {
	sh, _, err := tx.db.routeRefsLocked(args)
	if err != nil {
		return gomdb.Null(), err
	}
	return tx.txs[sh].Call(fn, args...)
}

// Batch runs fn as one coordinated update batch. The router's routing lock
// is taken first, then every shard's exclusive lock in shard-index order —
// one fixed acquisition order, so concurrent router operations cannot
// deadlock — and fn routes its operations through the multi-shard Tx. Each
// shard then flushes its deferred queue and checkpoints in shard order: the
// batch is a flush point on every shard even when only some were written,
// matching the single-engine contract that a batch ends quiescent. Router
// metadata is saved before the shard checkpoints run.
func (db *DB) Batch(fn func(*Tx) error) error {
	tx := db.BeginBatch()
	return db.EndBatch(tx, fn(tx))
}

// BeginBatch opens a coordinated update batch interactively: the routing
// lock and every shard's exclusive lock are taken here (in the same fixed
// order as Batch) and held until EndBatch. The split form exists for
// callers that cannot express the batch as one closure — a network session
// holding a batch open across request frames, for instance. The caller owns
// the pairing: every BeginBatch must reach EndBatch exactly once, even on
// client failure, or the router stays locked.
func (db *DB) BeginBatch() *Tx {
	db.mu.Lock()
	tx := &Tx{db: db, txs: make([]*gomdb.Tx, len(db.shards))}
	for i, sh := range db.shards {
		tx.txs[i] = sh.BeginBatch()
	}
	return tx
}

// EndBatch closes a batch opened by BeginBatch: router metadata is saved,
// then every shard flushes its deferred queue and checkpoints in shard
// order, and all locks release. err is the batch verdict (the closure error
// in Batch's terms); the first error among verdict, metadata save, and
// shard checkpoints is returned.
func (db *DB) EndBatch(tx *Tx, err error) error {
	defer db.mu.Unlock()
	if merr := db.saveMetaLocked(); err == nil {
		err = merr
	}
	for i, sh := range db.shards {
		if eerr := sh.EndBatch(tx.txs[i], nil); err == nil && eerr != nil {
			err = fmt.Errorf("shard %d: %w", i, eerr)
		}
	}
	return err
}

//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. Wall-clock
// performance assertions are skipped under it: instrumentation serializes
// the hot paths enough to invert real throughput relationships.
const raceEnabled = true

package bench

// The network-service wall-clock suite. Like shard.go this measures real
// operations per second, but the axis is the number of CONCURRENT CLIENTS
// driving a gomserve-style TCP server (internal/server) through the public
// client SDK: every operation pays the wire round trip — frame encode, CRC,
// kernel loopback, decode — on top of the engine work, so the headline is
// how far the service path scales before the single engine behind it
// saturates.
//
//   - forward:  point Call — the cheapest round trip, dominated by framing
//   - backward: Backward window scan, streamed back as match chunks
//   - tabular:  Retrieve over the GMR extension, streamed as row chunks
//   - mixed:    70% forward / 20% backward / 10% tabular
//
// A separate update section measures vertex-move throughput (a GetAttr +
// Set pair per op, i.e. two round trips and one RRR invalidation). Speedups
// are relative to the SAME mix at 1 client. `gombench -figure serve` writes
// the results to BENCH_serve.json.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gomdb"
	"gomdb/client"
	"gomdb/internal/fixtures"
	"gomdb/internal/server"
)

// ServePoint is one measurement: a concurrent-client count and the
// aggregate wall-clock operation rate the clients sustained.
type ServePoint struct {
	Clients   int     `json:"clients"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup_vs_1_client"`
}

// ServeMix is one operation mix measured across client counts.
type ServeMix struct {
	Name   string       `json:"name"`
	Points []ServePoint `json:"points"`
}

// ServeReport is the JSON document gombench writes to BENCH_serve.json.
type ServeReport struct {
	Harness       string     `json:"harness"`
	GoVersion     string     `json:"go_version"`
	NumCPU        int        `json:"num_cpu"`
	GOMAXPROCS    int        `json:"gomaxprocs"`
	NumCPUWarning string     `json:"num_cpu_warning,omitempty"`
	Cuboids       int        `json:"cuboids"`
	BufferPages   int        `json:"buffer_pages"`
	ClientCounts  []int      `json:"client_counts"`
	DurationMs    int64      `json:"duration_ms_per_point"`
	ChunkRows     int        `json:"chunk_rows"`
	Mixes         []ServeMix `json:"mixes"`
	Updates       ServeMix   `json:"updates"`
	Notes         string     `json:"notes"`
}

// serveClientCounts are the measured concurrency levels.
var serveClientCounts = []int{1, 2, 4, 8, 16}

// serveMixes names the read mixes; see runServeMixOp for the workloads.
var serveMixes = []string{"forward", "backward", "tabular", "mixed"}

// serveBenchServer builds one warmed plain-engine server on a loopback
// listener: the geometry base, a complete <<volume,weight>> GMR with its
// access paths exercised, and the same pool sizing as the shard suite.
func serveBenchServer(cuboids int) (*server.Server, net.Listener, []gomdb.OID, string, error) {
	db := gomdb.Open(gomdb.Config{BufferPages: 8192})
	if err := fixtures.DefineGeometry(db, false); err != nil {
		return nil, nil, nil, "", err
	}
	g, err := fixtures.PopulateGeometry(db, cuboids, cuboidSeed)
	if err != nil {
		return nil, nil, nil, "", err
	}
	gmrName := "Gvw"
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Name:     gmrName,
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
		Strategy: gomdb.Immediate,
	}); err != nil {
		return nil, nil, nil, "", err
	}
	for _, oid := range g.Cuboids {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(oid)); err != nil {
			return nil, nil, nil, "", err
		}
	}
	if _, err := db.Backward("Cuboid.volume", 0, 50); err != nil {
		return nil, nil, nil, "", err
	}
	if _, err := db.Retrieve(gmrName, []gomdb.FieldSpec{
		gomdb.AnySpec(), gomdb.RangeSpec(0, 50), gomdb.AnySpec(),
	}); err != nil {
		return nil, nil, nil, "", err
	}
	srv, err := server.New(server.Config{
		Backend:      server.Embedded{DB: db},
		ReadTimeout:  time.Minute,
		WriteTimeout: time.Minute,
	})
	if err != nil {
		return nil, nil, nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, "", err
	}
	go srv.Serve(ln)
	return srv, ln, g.Cuboids, gmrName, nil
}

// runServeMixOp performs one operation of the named mix over the wire.
func runServeMixOp(c *client.Client, cuboids []gomdb.OID, gmrName, mix string, rng *rand.Rand) error {
	op := mix
	if mix == "mixed" {
		switch r := rng.Intn(10); {
		case r < 7:
			op = "forward"
		case r < 9:
			op = "backward"
		default:
			op = "tabular"
		}
	}
	switch op {
	case "forward":
		_, err := c.Call("Cuboid.volume", gomdb.Ref(cuboids[rng.Intn(len(cuboids))]))
		return err
	case "backward":
		lo := float64(rng.Intn(500))
		_, err := c.Backward("Cuboid.volume", lo, lo+25)
		return err
	case "tabular":
		lo := float64(rng.Intn(500))
		_, err := c.Retrieve(gmrName, []gomdb.FieldSpec{
			gomdb.AnySpec(), gomdb.RangeSpec(lo, lo+25), gomdb.AnySpec(),
		})
		return err
	}
	return fmt.Errorf("bench: unknown serve mix %q", mix)
}

// runServeUpdateOp moves one vertex of a random cuboid over the wire: a
// GetAttr round trip to find the vertex, a Set round trip to move it.
func runServeUpdateOp(c *client.Client, cuboids []gomdb.OID, rng *rand.Rand) error {
	v, err := c.GetAttr(cuboids[rng.Intn(len(cuboids))], "V1")
	if err != nil {
		return err
	}
	return c.Set(v.R, "X", gomdb.Float(float64(rng.Intn(100))))
}

// measureServe drives one op function through k concurrent clients (each on
// its own TCP connection) for roughly d of wall time.
func measureServe(addr string, k int, op func(c *client.Client, rng *rand.Rand) error, d time.Duration) (ServePoint, error) {
	clients := make([]*client.Client, k)
	for i := range clients {
		c, err := client.Dial(addr, client.Options{DialTimeout: 10 * time.Second, CallTimeout: time.Minute})
		if err != nil {
			return ServePoint{}, err
		}
		defer c.Close()
		clients[i] = c
	}
	var stop atomic.Bool
	var ops atomic.Int64
	errs := make(chan error, k)
	var wg sync.WaitGroup
	start := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(c *client.Client, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := int64(0)
			for !stop.Load() {
				if err := op(c, rng); err != nil {
					errs <- err
					return
				}
				n++
			}
			ops.Add(n)
		}(c, int64(3000+i))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return ServePoint{}, err
	}
	return ServePoint{
		Clients:   k,
		Ops:       ops.Load(),
		OpsPerSec: float64(ops.Load()) / elapsed.Seconds(),
	}, nil
}

// serveSpeedups fills Speedup on every point relative to the 1-client rate.
func serveSpeedups(m *ServeMix) {
	if len(m.Points) == 0 || m.Points[0].OpsPerSec == 0 {
		return
	}
	base := m.Points[0].OpsPerSec
	for i := range m.Points {
		m.Points[i].Speedup = m.Points[i].OpsPerSec / base
	}
}

// Serve runs the network-service wall-clock suite and returns the report
// plus a Figure (X = concurrent clients, one series per read mix,
// Y = ops/sec).
func Serve(sc Scale) (*ServeReport, *Figure, error) {
	n := 800
	d := 250 * time.Millisecond
	if sc.OpsDivisor > 1 { // -short
		n = 200
		d = 60 * time.Millisecond
	}
	rep := &ServeReport{
		Harness:       "gombench -figure serve",
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPUWarning: NumCPUWarning(),
		Cuboids:       n,
		BufferPages:   8192,
		ClientCounts:  serveClientCounts,
		DurationMs:    d.Milliseconds(),
		ChunkRows:     server.DefaultChunkRows,
		Notes: "Wall-clock ops/sec of the TCP service path at increasing concurrent-client counts, each client on " +
			"its own connection through the public SDK; every op pays frame encode/CRC/loopback/decode on top of " +
			"the engine work. forward is a single Call round trip, backward and tabular stream results back in " +
			"bounded chunks; updates are a GetAttr+Set pair per op. speedup_vs_1_client compares the same mix at " +
			"1 client; the single engine behind the listener bounds scaling, and a single-core host serializes " +
			"everything (see num_cpu_warning).",
	}
	fig := &Figure{
		ID:     "serve",
		Title:  "Wall-clock service throughput vs. concurrent clients",
		XLabel: "clients",
		YLabel: "ops/sec",
	}
	for _, k := range serveClientCounts {
		fig.X = append(fig.X, float64(k))
	}
	srv, ln, cuboids, gmrName, err := serveBenchServer(n)
	if err != nil {
		return nil, nil, fmt.Errorf("serve bench: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer srv.Shutdown(ctx)
	addr := ln.Addr().String()
	mixes := make([]ServeMix, len(serveMixes))
	for i, mix := range serveMixes {
		mixes[i].Name = mix
	}
	rep.Updates = ServeMix{Name: "vertex-move"}
	for _, k := range serveClientCounts {
		for i, mix := range serveMixes {
			mix := mix
			pt, err := measureServe(addr, k, func(c *client.Client, rng *rand.Rand) error {
				return runServeMixOp(c, cuboids, gmrName, mix, rng)
			}, d)
			if err != nil {
				return nil, nil, fmt.Errorf("serve bench %s x%d: %w", mix, k, err)
			}
			mixes[i].Points = append(mixes[i].Points, pt)
		}
		pt, err := measureServe(addr, k, func(c *client.Client, rng *rand.Rand) error {
			return runServeUpdateOp(c, cuboids, rng)
		}, d)
		if err != nil {
			return nil, nil, fmt.Errorf("serve bench updates x%d: %w", k, err)
		}
		rep.Updates.Points = append(rep.Updates.Points, pt)
	}
	for i := range mixes {
		serveSpeedups(&mixes[i])
	}
	serveSpeedups(&rep.Updates)
	rep.Mixes = mixes
	for _, m := range mixes {
		s := Series{Name: m.Name}
		for _, pt := range m.Points {
			s.Points = append(s.Points, pt.OpsPerSec)
		}
		fig.Series = append(fig.Series, s)
	}
	// Drain before the audit: the clients each point dialed are closed, but
	// their sessions are reaped asynchronously.
	if err := srv.Shutdown(ctx); err != nil {
		return nil, nil, fmt.Errorf("serve bench: drain: %w", err)
	}
	if v := srv.AuditQuiescent(); len(v) != 0 {
		return nil, nil, fmt.Errorf("serve bench: post-run audit: %v", v)
	}
	return rep, fig, nil
}

package bench

import (
	"bytes"
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	return &Figure{
		ID: "F", Title: "sample", XLabel: "x", YLabel: "secs",
		X: []float64{1, 2, 3},
		Series: []Series{
			{Name: "a", Points: []float64{1, 10, 100}},
			{Name: "b", Points: []float64{5, 5, 5}},
		},
	}
}

func TestPrintCSV(t *testing.T) {
	var buf bytes.Buffer
	sampleFigure().PrintCSV(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[1] != "x,a,b" {
		t.Fatalf("csv header = %q", lines[1])
	}
	if lines[2] != "1,1,5" || lines[4] != "3,100,5" {
		t.Fatalf("csv rows: %q / %q", lines[2], lines[4])
	}
}

func TestPrintPlot(t *testing.T) {
	var buf bytes.Buffer
	fig := sampleFigure()
	fig.PrintPlot(&buf)
	out := buf.String()
	for _, want := range []string{"log10 secs", "* = a", "+ = b", "100.0", "1.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// The marks appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("plot has no data marks")
	}
	// Degenerate figures do not crash.
	var buf2 bytes.Buffer
	(&Figure{ID: "E", X: []float64{1}, Series: []Series{{Name: "z", Points: []float64{0}}}}).PrintPlot(&buf2)
	if !strings.Contains(buf2.String(), "nothing to plot") {
		t.Fatalf("degenerate plot output: %q", buf2.String())
	}
}

func TestMDSAblationShape(t *testing.T) {
	fig, err := AblationMDS(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	last := len(fig.X) - 1
	scan := fig.Series[0].Points[last]
	mds := fig.Series[1].Points[last]
	if mds > scan {
		t.Fatalf("MDS (%g) slower than extension scan (%g)", mds, scan)
	}
}

package bench

import (
	"fmt"
	"io"
	"sort"
)

// Runner produces one figure at a given scale.
type Runner func(Scale) (*Figure, error)

// Registry maps experiment ids to runners — one entry per table and figure
// of the paper's evaluation section.
var Registry = map[string]Runner{
	"table1":       func(Scale) (*Figure, error) { return Table1() },
	"figure7":      Figure7,
	"figure8":      Figure8,
	"figure9":      Figure9,
	"figure10":     Figure10,
	"figure11":     Figure11,
	"figure13":     Figure13,
	"figure14":     Figure14,
	"figure15":     Figure15,
	"ablation":     Ablation,
	"ablation-mds": AblationMDS,
}

// canonicalOrder lists the experiments in presentation order: the table,
// the paper's figures numerically, then the extra ablation.
var canonicalOrder = []string{
	"table1", "figure7", "figure8", "figure9", "figure10", "figure11",
	"figure13", "figure14", "figure15", "ablation", "ablation-mds",
}

// IDs returns the experiment ids in canonical order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for _, id := range canonicalOrder {
		if _, ok := Registry[id]; ok {
			out = append(out, id)
		}
	}
	// Anything registered but not listed goes last, sorted.
	var extra []string
	for id := range Registry {
		found := false
		for _, c := range canonicalOrder {
			if id == c {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// RunAll runs every registered experiment at the given scale, printing each
// figure to w as it completes, and returns the figures by id.
func RunAll(w io.Writer, sc Scale) (map[string]*Figure, error) {
	out := make(map[string]*Figure, len(Registry))
	for _, id := range IDs() {
		fig, err := Registry[id](sc)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", id, err)
		}
		fig.Print(w)
		out[id] = fig
	}
	return out, nil
}

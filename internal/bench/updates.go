package bench

// The update-path suite for the deferred rematerialization strategy: bursty
// update workloads where each touched object receives several elementary
// updates between flush points. Immediate pays one recomputation per update,
// lazy pays one per first re-read, deferred coalesces the burst into one
// recomputation per entry at the flush. Costs are *simulated seconds* like
// the figure experiments; wall-clock milliseconds are reported separately for
// the worker-pool comparison (the simulated cost of a deferred flush is
// bit-identical for every worker count — the charge-equivalence property —
// so only wall time can show the parallel drain).
//
// `gombench -figure updates` writes the results to BENCH_updates.json.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"gomdb"
	"gomdb/internal/fixtures"
)

// updatesSeed fixes the workload; every strategy and worker count replays the
// same operation sequence.
const updatesSeed = 271

// UpdatesPoint is one measurement: a burst size (elementary updates per
// touched object between flushes) and the simulated cost of the workload.
type UpdatesPoint struct {
	PerObject  int     `json:"updates_per_object"`
	SimSeconds float64 `json:"sim_seconds"`
}

// UpdatesStrategy is one maintenance discipline across the burst-size sweep.
type UpdatesStrategy struct {
	Name   string         `json:"name"`
	Points []UpdatesPoint `json:"points"`
}

// UpdatesWorkerPoint is one deferred drain at a fixed burst size with a given
// worker-pool bound.
type UpdatesWorkerPoint struct {
	Workers    int     `json:"workers"`
	SimSeconds float64 `json:"sim_seconds"`
	WallMs     float64 `json:"wall_ms"`
	// EvalWallMs and FlushWallMs are the summed per-item evaluation time and
	// the summed flush wall time of phase 1; their ratio is the realized
	// parallel speedup of the drain (bounded by schedulable CPUs).
	EvalWallMs      float64 `json:"eval_wall_ms"`
	FlushWallMs     float64 `json:"flush_wall_ms"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// UpdatesReport is the JSON document gombench writes to BENCH_updates.json.
type UpdatesReport struct {
	Harness         string            `json:"harness"`
	GoVersion       string            `json:"go_version"`
	NumCPU          int               `json:"num_cpu"`
	GOMAXPROCS      int               `json:"gomaxprocs"`
	Cuboids         int               `json:"cuboids"`
	Bursts          int               `json:"bursts"`
	ObjectsPerBurst int               `json:"objects_per_burst"`
	PerObjectSweep  []int             `json:"per_object_sweep"`
	Strategies      []UpdatesStrategy `json:"strategies"`
	// WorkerSweep is the deferred strategy at the largest burst size under
	// increasing worker-pool bounds.
	WorkerSweep      []UpdatesWorkerPoint `json:"deferred_worker_sweep"`
	ChargesIdentical bool                 `json:"worker_charges_identical"`
	QueueHighWater   int64                `json:"queue_high_water"`
	CoalescedUpdates int64                `json:"coalesced_updates"`
	Flushes          int64                `json:"flushes"`
	Notes            string               `json:"notes"`
}

// updatesRun replays the burst workload under one configuration and returns
// the simulated seconds of the measured phase plus its wall time.
type updatesRun struct {
	simSeconds float64
	wallMs     float64
	evalMs     float64
	flushMs    float64
	highWater  int64
	coalesced  int64
	flushes    int64
}

// runUpdateBursts builds a fresh database, materializes <<volume,weight>>
// under the given strategy, and drives `bursts` rounds: each round touches
// `objects` cuboids with `perObj` elementary vertex updates apiece inside one
// Batch (whose end is a flush point — a no-op for immediate and lazy), then
// reads both functions of every touched cuboid back so lazy pays its
// rematerialization debt inside the measured window.
func runUpdateBursts(strategy gomdb.Strategy, workers, nCuboids, bursts, objects, perObj int) (updatesRun, error) {
	cfg := gomdb.DefaultConfig()
	cfg.RematWorkers = workers
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		return updatesRun{}, err
	}
	g, err := fixtures.PopulateGeometry(db, nCuboids, cuboidSeed)
	if err != nil {
		return updatesRun{}, err
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: strategy, Mode: gomdb.ModeObjDep,
	}); err != nil {
		return updatesRun{}, err
	}
	rng := rand.New(rand.NewSource(updatesSeed))
	vertices := []string{"V1", "V2", "V4", "V5"}
	attrs := []string{"X", "Y", "Z"}
	start := db.Clock.Snapshot()
	t0 := time.Now()
	for b := 0; b < bursts; b++ {
		touched := make([]gomdb.OID, objects)
		for i := range touched {
			touched[i] = g.Cuboids[rng.Intn(len(g.Cuboids))]
		}
		err := db.Batch(func(tx *gomdb.Tx) error {
			for _, c := range touched {
				for u := 0; u < perObj; u++ {
					v, err := tx.GetAttr(c, vertices[u%len(vertices)])
					if err != nil {
						return err
					}
					if err := tx.Set(v.R, attrs[rng.Intn(len(attrs))], gomdb.Float(1+rng.Float64()*10)); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return updatesRun{}, err
		}
		for _, c := range touched {
			for _, fn := range []string{"Cuboid.volume", "Cuboid.weight"} {
				if _, err := db.Call(fn, gomdb.Ref(c)); err != nil {
					return updatesRun{}, err
				}
			}
		}
	}
	wall := time.Since(t0)
	d := db.Clock.Sub(start)
	st := &db.GMRs.Stats
	return updatesRun{
		simSeconds: float64(d.PhysReads+d.PhysWrites)*float64(db.Clock.IOCostMicros)/1e6 +
			float64(d.CPUOps)*float64(db.Clock.CPUCostMicros)/1e6,
		wallMs:    float64(wall.Nanoseconds()) / 1e6,
		evalMs:    float64(atomic.LoadInt64(&st.FlushEvalNanos)) / 1e6,
		flushMs:   float64(atomic.LoadInt64(&st.FlushWallNanos)) / 1e6,
		highWater: atomic.LoadInt64(&st.QueueHighWater),
		coalesced: atomic.LoadInt64(&st.CoalescedUpdates),
		flushes:   atomic.LoadInt64(&st.Flushes),
	}, nil
}

// Updates runs the burst-update suite and returns the report plus a Figure
// (X = updates per object, one series per strategy, Y = simulated seconds).
func Updates(sc Scale) (*UpdatesReport, *Figure, error) {
	nCuboids := 400
	bursts := 8
	objects := 24
	if sc.OpsDivisor > 1 { // -short
		nCuboids = 100
		bursts = 3
		objects = 8
	}
	sweep := []int{1, 2, 4, 8}
	rep := &UpdatesReport{
		Harness:         "gombench -figure updates",
		GoVersion:       runtime.Version(),
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Cuboids:         nCuboids,
		Bursts:          bursts,
		ObjectsPerBurst: objects,
		PerObjectSweep:  sweep,
		Notes: "Simulated seconds of a bursty update workload (updates per object between flush points on the x-axis), " +
			"each burst followed by a read-back of every touched result so lazy pays its debt inside the window. " +
			"The deferred worker sweep reruns the largest burst size with growing worker pools: simulated charges are " +
			"bit-identical by construction (charge-equivalence), so the parallel drain can only show in wall time, " +
			"which requires as many schedulable CPUs as workers (see num_cpu).",
	}
	fig := &Figure{
		ID:     "updates",
		Title:  "Burst updates: immediate vs lazy vs deferred (coalescing)",
		XLabel: "#updates/obj",
		YLabel: fmt.Sprintf("simulated seconds, %d bursts x %d objects", bursts, objects),
	}
	for _, u := range sweep {
		fig.X = append(fig.X, float64(u))
	}
	strategies := []struct {
		name     string
		strategy gomdb.Strategy
	}{
		{"Immediate", gomdb.Immediate},
		{"Lazy", gomdb.Lazy},
		{"Deferred", gomdb.Deferred},
	}
	for _, s := range strategies {
		us := UpdatesStrategy{Name: s.name}
		series := Series{Name: s.name}
		for _, perObj := range sweep {
			run, err := runUpdateBursts(s.strategy, 1, nCuboids, bursts, objects, perObj)
			if err != nil {
				return nil, nil, fmt.Errorf("updates %s/%d: %w", s.name, perObj, err)
			}
			us.Points = append(us.Points, UpdatesPoint{PerObject: perObj, SimSeconds: run.simSeconds})
			series.Points = append(series.Points, run.simSeconds)
			if s.strategy == gomdb.Deferred && perObj == sweep[len(sweep)-1] {
				rep.QueueHighWater = run.highWater
				rep.CoalescedUpdates = run.coalesced
				rep.Flushes = run.flushes
			}
		}
		rep.Strategies = append(rep.Strategies, us)
		fig.Series = append(fig.Series, series)
	}
	// Worker sweep: the deferred drain at the largest burst size.
	perObj := sweep[len(sweep)-1]
	rep.ChargesIdentical = true
	var baseSim float64
	for _, w := range []int{1, 2, 4, 8} {
		run, err := runUpdateBursts(gomdb.Deferred, w, nCuboids, bursts, objects, perObj)
		if err != nil {
			return nil, nil, fmt.Errorf("updates deferred w%d: %w", w, err)
		}
		pt := UpdatesWorkerPoint{
			Workers:     w,
			SimSeconds:  run.simSeconds,
			WallMs:      run.wallMs,
			EvalWallMs:  run.evalMs,
			FlushWallMs: run.flushMs,
		}
		if run.flushMs > 0 {
			pt.ParallelSpeedup = run.evalMs / run.flushMs
		}
		if w == 1 {
			baseSim = run.simSeconds
		} else if run.simSeconds != baseSim {
			rep.ChargesIdentical = false
		}
		rep.WorkerSweep = append(rep.WorkerSweep, pt)
	}
	return rep, fig, nil
}

package bench

import (
	"fmt"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

// Ablation experiments for the design choices DESIGN.md calls out: the
// Section 5 mode ladder (Basic → SchemaDep → ObjDep → InfoHiding) and the
// second-chance RRR variant. These have no direct counterpart figure in the
// paper; they quantify the contribution of each individual mechanism on a
// fixed update workload.

// ablationWorkload runs a fixed mix of updates (half scales, half
// irrelevant Value updates, plus rotations) against <<volume>> maintained
// with the given configuration and returns the simulated seconds.
func ablationWorkload(mode core.HookMode, secondChance bool, nCuboids, nOps int) (float64, error) {
	db := gomdb.Open(gomdb.DefaultConfig())
	encaps := mode == core.ModeInfoHiding
	if err := fixtures.DefineGeometry(db, encaps); err != nil {
		return 0, err
	}
	g, err := fixtures.PopulateGeometry(db, nCuboids, cuboidSeed)
	if err != nil {
		return 0, err
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: mode, SecondChance: secondChance,
	}); err != nil {
		return 0, err
	}
	rng := g.Rng()
	// "Innocent" vertices: used by no cuboid, sharing only the Vertex type
	// with the materialization — the paper's Cylinder/Pyramid scenario.
	var innocent []gomdb.OID
	for i := 0; i < 50; i++ {
		innocent = append(innocent, fixtures.NewVertex(db, float64(i), 0, 0))
	}
	start := db.Clock.Snapshot()
	for i := 0; i < nOps; i++ {
		c := g.RandomCuboid()
		switch i % 5 {
		case 0: // scale: invalidates volume
			s := fixtures.NewVertex(db, 0.8+rng.Float64()*0.4, 1, 1)
			if _, err := db.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s)); err != nil {
				return 0, err
			}
		case 1, 2: // rotate: volume-invariant
			if _, err := db.Call("Cuboid.rotate", gomdb.Ref(c), gomdb.Float(rng.Float64()), gomdb.Str("z")); err != nil {
				return 0, err
			}
		case 3: // irrelevant attribute update
			if encaps {
				// Value is private under strict encapsulation; use a
				// translate, which is declared volume-invariant.
				d := fixtures.NewVertex(db, rng.Float64(), 0, 0)
				if _, err := db.Call("Cuboid.translate", gomdb.Ref(c), gomdb.Ref(d)); err != nil {
					return 0, err
				}
			} else if err := db.Set(c, "Value", gomdb.Float(rng.Float64()*100)); err != nil {
				return 0, err
			}
		case 4: // update of an innocent vertex (relevant operation, wrong object)
			v := innocent[rng.Intn(len(innocent))]
			if err := db.Set(v, "X", gomdb.Float(rng.Float64()*10)); err != nil {
				return 0, err
			}
		}
	}
	d := db.Clock.Sub(start)
	return float64(d.PhysReads+d.PhysWrites)*float64(db.Clock.IOCostMicros)/1e6 +
		float64(d.CPUOps)*float64(db.Clock.CPUCostMicros)/1e6, nil
}

// Ablation produces the mode-ladder table: one series per maintenance
// configuration over an increasing number of update operations.
func Ablation(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "Ablation",
		Title:  "Invalidation-machinery ablation (Section 5 mode ladder, update-only workload)",
		XLabel: "#updates",
		YLabel: "simulated seconds",
		X:      thin(seq(100, 500, 100), sc.Points),
	}
	configs := []struct {
		name string
		mode core.HookMode
		sc   bool
	}{
		{"Basic", core.ModeBasic, false},
		{"SchemaDep", core.ModeSchemaDep, false},
		{"ObjDep", core.ModeObjDep, false},
		{"ObjDep+2ndCh", core.ModeObjDep, true},
		{"InfoHiding", core.ModeInfoHiding, false},
	}
	for _, cfg := range configs {
		s := Series{Name: cfg.name}
		for _, n := range fig.X {
			t, err := ablationWorkload(cfg.mode, cfg.sc, sc.Cuboids/4+1, sc.ops(int(n)))
			if err != nil {
				return nil, fmt.Errorf("ablation %s: %w", cfg.name, err)
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

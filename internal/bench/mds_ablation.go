package bench

import (
	"fmt"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

// AblationMDS quantifies the Section 3.3 trade-off: tabular queries that
// constrain a combination of columns (a volume window AND a weight window)
// against <<volume, weight>> with and without the multidimensional Grid
// File. Without the MDS the retrieval scans the extension; with it only the
// intersecting grid buckets are visited.
func AblationMDS(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "Ablation-MDS",
		Title:  "Grid File (MDS) vs extension scan for combined-column retrievals",
		XLabel: "#retrievals",
		YLabel: "simulated seconds",
		X:      thin(seq(100, 500, 100), sc.Points),
	}
	for _, useMDS := range []bool{false, true} {
		name := "ExtensionScan"
		if useMDS {
			name = "GridFileMDS"
		}
		s := Series{Name: name}
		for _, n := range fig.X {
			t, err := mdsWorkload(useMDS, sc.Cuboids/2+1, sc.ops(int(n)))
			if err != nil {
				return nil, fmt.Errorf("mds ablation: %w", err)
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func mdsWorkload(useMDS bool, nCuboids, nOps int) (float64, error) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		return 0, err
	}
	g, err := fixtures.PopulateGeometry(db, nCuboids, cuboidSeed)
	if err != nil {
		return 0, err
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
		UseMDS: useMDS,
	})
	if err != nil {
		return 0, err
	}
	rng := g.Rng()
	start := db.Clock.Snapshot()
	for i := 0; i < nOps; i++ {
		vLo := rng.Float64() * 500
		wLo := rng.Float64() * 3000
		if _, err := db.Retrieve(gmr.Name, []gomdb.FieldSpec{
			core.AnySpec(),
			core.RangeSpec(vLo, vLo+40),
			core.RangeSpec(wLo, wLo+300),
		}); err != nil {
			return 0, err
		}
	}
	d := db.Clock.Sub(start)
	return float64(d.PhysReads+d.PhysWrites)*float64(db.Clock.IOCostMicros)/1e6 +
		float64(d.CPUOps)*float64(db.Clock.CPUCostMicros)/1e6, nil
}

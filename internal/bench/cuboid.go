package bench

import (
	"fmt"
	"math"
	"math/rand"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
	"gomdb/internal/query"
)

// The Cuboid benchmarks of Section 7.1. The database holds 8000 Cuboid
// instances, each referencing 8 Vertex instances and one Material instance.
// The operation mix is M = (Qmix, Umix, Pup, #ops).

// cuboidBench is one program version over one freshly populated database.
type cuboidBench struct {
	db      *gomdb.Database
	g       *fixtures.Geometry
	version Version
	rng     *rand.Rand
	qbw     *query.Query
	epsilon float64
}

const cuboidSeed = 42

// newCuboidBench builds the database and applies the version's
// materialization configuration. The InfoHiding version runs over the
// strictly encapsulated Cuboid schema of Section 5.3; all others over the
// fully public one.
func newCuboidBench(version Version, nCuboids int) (*cuboidBench, error) {
	db := gomdb.Open(gomdb.DefaultConfig())
	encaps := version == InfoHiding
	if err := fixtures.DefineGeometry(db, encaps); err != nil {
		return nil, err
	}
	g, err := fixtures.PopulateGeometry(db, nCuboids, cuboidSeed)
	if err != nil {
		return nil, err
	}
	b := &cuboidBench{db: db, g: g, version: version, rng: g.Rng(), epsilon: 8.0}
	switch version {
	case WithoutGMR:
		// no materialization
	case WithGMR:
		_, err = db.Materialize(gomdb.MaterializeOptions{
			Funcs: []string{"Cuboid.volume"}, Complete: true,
			Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
		})
	case InfoHiding:
		_, err = db.Materialize(gomdb.MaterializeOptions{
			Funcs: []string{"Cuboid.volume"}, Complete: true,
			Strategy: gomdb.Immediate, Mode: gomdb.ModeInfoHiding,
		})
	case LazyStart:
		var gmr *gomdb.GMR
		gmr, err = db.Materialize(gomdb.MaterializeOptions{
			Funcs: []string{"Cuboid.volume"}, Complete: true,
			Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
		})
		if err == nil {
			err = db.GMRs.InvalidateAll(gmr.Name)
		}
	default:
		err = fmt.Errorf("bench: unknown cuboid version %q", version)
	}
	if err != nil {
		return nil, err
	}
	b.qbw, err = query.Parse(`range c: Cuboid retrieve c where c.volume > $lo and c.volume < $hi`)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Qbw is the backward query: retrieve c where r-ε < c.volume < r+ε.
func (b *cuboidBench) Qbw() error {
	r := 20 + b.rng.Float64()*400
	_, err := b.db.Queries.RunQuery(b.qbw, map[string]gomdb.Value{
		"lo": gomdb.Float(r - b.epsilon),
		"hi": gomdb.Float(r + b.epsilon),
	})
	return err
}

// Qfw is the forward query: retrieve c.volume where c.CuboidID = randomID.
// Finding the qualifying Cuboid is supported by an index (footnote 8), here
// the in-memory ByID map.
func (b *cuboidBench) Qfw() error {
	ids := b.g.Cuboids
	oid := ids[b.rng.Intn(len(ids))]
	_, err := b.db.Call("Cuboid.volume", gomdb.Ref(oid))
	return err
}

// S scales a randomly chosen Cuboid.
func (b *cuboidBench) S() error {
	c := b.g.RandomCuboid()
	f := func() float64 { return 0.8 + b.rng.Float64()*0.4 }
	s := fixtures.NewVertex(b.db, f(), f(), f())
	_, err := b.db.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s))
	return err
}

// R rotates a randomly chosen Cuboid.
func (b *cuboidBench) R() error {
	c := b.g.RandomCuboid()
	angle := b.rng.Float64() * 2 * math.Pi
	axis := []string{"x", "y", "z"}[b.rng.Intn(3)]
	_, err := b.db.Call("Cuboid.rotate", gomdb.Ref(c), gomdb.Float(angle), gomdb.Str(axis))
	return err
}

// T translates a randomly chosen Cuboid.
func (b *cuboidBench) T() error {
	c := b.g.RandomCuboid()
	f := func() float64 { return b.rng.Float64()*20 - 10 }
	d := fixtures.NewVertex(b.db, f(), f(), f())
	_, err := b.db.Call("Cuboid.translate", gomdb.Ref(c), gomdb.Ref(d))
	return err
}

// I creates a new Cuboid of randomly chosen dimensions.
func (b *cuboidBench) I() error {
	b.g.CreateRandomCuboid()
	return nil
}

// D deletes a randomly chosen Cuboid.
func (b *cuboidBench) D() error {
	return b.g.DeleteRandomCuboid()
}

// wop is a weighted operation.
type wop struct {
	w float64
	f func() error
}

// runMix performs nops operations: with probability pup an update drawn
// from umix, otherwise a query drawn from qmix (weights within each mix).
// It returns the simulated seconds the operations took.
func runMix(db *gomdb.Database, rng *rand.Rand, qmix, umix []wop, pup float64, nops int) (float64, error) {
	start := db.Clock.Snapshot()
	for i := 0; i < nops; i++ {
		pool := qmix
		if rng.Float64() < pup {
			pool = umix
		}
		if len(pool) == 0 {
			continue
		}
		r := rng.Float64()
		acc := 0.0
		f := pool[len(pool)-1].f
		for _, op := range pool {
			acc += op.w
			if r < acc {
				f = op.f
				break
			}
		}
		if err := f(); err != nil {
			return 0, err
		}
	}
	d := db.Clock.Sub(start)
	return float64(d.PhysReads+d.PhysWrites)*float64(db.Clock.IOCostMicros)/1e6 +
		float64(d.CPUOps)*float64(db.Clock.CPUCostMicros)/1e6, nil
}

// Figure7 reproduces "Performance of GMR under Varying Update
// Probabilities": 40 operations, Qmix = {(.5, Qbw), (.5, Qfw)},
// Umix = {(.5, I), (.5, S)}, Pup = 0 step .05 to 1.
func Figure7(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "Figure 7",
		Title:  "Performance of GMR under varying update probabilities",
		XLabel: "Pup",
		YLabel: "simulated seconds for 40 ops",
		X:      thin(seq(0, 1, 0.05), sc.Points),
	}
	nops := sc.ops(40)
	for _, v := range []Version{WithoutGMR, WithGMR, InfoHiding} {
		s := Series{Name: v.String()}
		for _, pup := range fig.X {
			b, err := newCuboidBench(v, sc.Cuboids)
			if err != nil {
				return nil, err
			}
			t, err := runMix(b.db, b.rng,
				[]wop{{0.5, b.Qbw}, {0.5, b.Qfw}},
				[]wop{{0.5, b.I}, {0.5, b.S}},
				pup, nops)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure8 reproduces "Determining the Break-Even Point of Function
// Materialization": 500 operations, Qmix = {Qbw}, Umix = {S}, Pup from 0.94
// to 1.0 (increments .02, .02, then .002).
func Figure8(sc Scale) (*Figure, error) {
	x := []float64{0.94, 0.96}
	x = append(x, seq(0.98, 1.0, 0.002)...)
	fig := &Figure{
		ID:     "Figure 8",
		Title:  "Break-even point of function materialization",
		XLabel: "Pup",
		YLabel: "simulated seconds for 500 ops",
		X:      thin(x, sc.Points),
	}
	nops := sc.ops(500)
	for _, v := range []Version{WithoutGMR, WithGMR, InfoHiding} {
		s := Series{Name: v.String()}
		for _, pup := range fig.X {
			b, err := newCuboidBench(v, sc.Cuboids)
			if err != nil {
				return nil, err
			}
			t, err := runMix(b.db, b.rng,
				[]wop{{1.0, b.Qbw}},
				[]wop{{1.0, b.S}},
				pup, nops)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure9 reproduces "Cost of Forward Queries": 200 to 2000 forward
// queries, no updates.
func Figure9(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "Figure 9",
		Title:  "Cost of forward queries",
		XLabel: "#Qfw",
		YLabel: "simulated seconds",
		X:      thin(seq(200, 2000, 200), sc.Points),
	}
	for _, v := range []Version{WithoutGMR, WithGMR} {
		s := Series{Name: v.String()}
		for _, n := range fig.X {
			b, err := newCuboidBench(v, sc.Cuboids)
			if err != nil {
				return nil, err
			}
			t, err := runMix(b.db, b.rng, []wop{{1.0, b.Qfw}}, nil, 0, sc.ops(int(n)))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure10 reproduces "Invalidation Overhead Incurred by Materialized
// volume": 250 to 2500 rotations, with the additional Lazy configuration in
// which all volume results were invalidated before the run.
func Figure10(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "Figure 10",
		Title:  "Invalidation overhead incurred by materialized volume (rotations only)",
		XLabel: "#rotations",
		YLabel: "simulated seconds",
		X:      thin(seq(250, 2500, 250), sc.Points),
	}
	for _, v := range []Version{WithoutGMR, WithGMR, LazyStart, InfoHiding} {
		s := Series{Name: v.String()}
		for _, n := range fig.X {
			b, err := newCuboidBench(v, sc.Cuboids)
			if err != nil {
				return nil, err
			}
			t, err := runMix(b.db, b.rng, nil, []wop{{1.0, b.R}}, 1.0, sc.ops(int(n)))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure11 reproduces "The Benefits of Information Hiding": 400 update
// operations with P(S) rising from 0 to 1 while P(R) falls from 1 to 0.
func Figure11(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "Figure 11",
		Title:  "Benefits of information hiding (scale/rotate mix)",
		XLabel: "#scalations",
		YLabel: "simulated seconds for 400 ops",
	}
	probs := thin(seq(0, 1, 0.05), sc.Points)
	for _, p := range probs {
		fig.X = append(fig.X, math.Round(p*400))
	}
	nops := sc.ops(400)
	for _, v := range []Version{WithoutGMR, WithGMR, InfoHiding} {
		s := Series{Name: v.String()}
		for _, pScale := range probs {
			b, err := newCuboidBench(v, sc.Cuboids)
			if err != nil {
				return nil, err
			}
			t, err := runMix(b.db, b.rng, nil,
				[]wop{{pScale, b.S}, {1 - pScale, b.R}},
				1.0, nops)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Table1 reproduces the Section 3.1 example GMR extension over the Figure 2
// database (volumes 300/200/100, weights 2358/1572/1900).
func Table1() (*Figure, error) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		return nil, err
	}
	g, err := fixtures.ExampleGeometry(db)
	if err != nil {
		return nil, err
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "Table 1",
		Title:  "Extension of <<volume, weight>> over the Figure 2 database",
		XLabel: "O1 (oid)",
		YLabel: "volume / weight",
		Series: []Series{{Name: "volume"}, {Name: "weight"}},
	}
	for _, oid := range g.Cuboids {
		e, ok := func() (core.Match, bool) {
			ms, err := db.GMRs.All("Cuboid.volume")
			if err != nil {
				return core.Match{}, false
			}
			for _, m := range ms {
				if m.Args[0].R == oid {
					return m, true
				}
			}
			return core.Match{}, false
		}()
		if !ok {
			return nil, fmt.Errorf("bench: no GMR entry for %v", oid)
		}
		fig.X = append(fig.X, float64(oid))
		v, _ := e.Result.AsFloat()
		fig.Series[0].Points = append(fig.Series[0].Points, v)
		w, err := db.GMRs.Forward("Cuboid.weight", e.Args)
		if err != nil {
			return nil, err
		}
		wf, _ := w.AsFloat()
		fig.Series[1].Points = append(fig.Series[1].Points, wf)
	}
	_ = gmr
	return fig, nil
}

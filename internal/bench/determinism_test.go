package bench

import (
	"bytes"
	"testing"
)

// TestFigureDeterminism runs the same experiments twice in one process and
// requires byte-identical rendered output. The figures report the simulated
// clock, which only advances through deterministic page traffic — if a
// change makes the numbers depend on goroutine scheduling, map iteration
// order, or the machine's core count (e.g. a buffer-pool replacement policy
// that varies with the shard count), this catches it.
func TestFigureDeterminism(t *testing.T) {
	sc := Scale{Cuboids: 200, OpsDivisor: 10, Points: 10, CompanyDivisor: 10}
	for _, id := range []string{"table1", "figure9", "figure10"} {
		var runs [2]bytes.Buffer
		for i := range runs {
			fig, err := Registry[id](sc)
			if err != nil {
				t.Fatalf("%s run %d: %v", id, i+1, err)
			}
			fig.Print(&runs[i])
			fig.PrintCSV(&runs[i])
		}
		if !bytes.Equal(runs[0].Bytes(), runs[1].Bytes()) {
			t.Errorf("%s: output differs between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
				id, runs[0].String(), runs[1].String())
		}
	}
}

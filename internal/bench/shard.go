package bench

// The horizontal-sharding wall-clock suite. Like throughput.go this measures
// real operations per second, but the axis is the SHARD COUNT of the
// scatter-gather router (internal/shard) rather than the goroutine count:
// the same geometry base is partitioned across 1, 2, 4, and 8 engines and a
// fixed worker pool drives each operation mix against the router facade.
//
//   - forward:  point-routed Call — one shard's engine lock per op, so
//     independent workers land on independent locks as shards grow
//   - backward: scatter Backward over every shard + deterministic merge
//   - tabular:  scatter Retrieve over the per-shard GMR extensions
//   - mixed:    70% forward / 20% backward / 10% tabular
//
// A separate update section measures vertex-move throughput: each move
// invalidates the affected <<volume,weight>> entries via the owning shard's
// RRR only, so writers on different shards never serialize on one
// invalidation path. Speedups are relative to the SAME mix at 1 shard.
// `gombench -figure shard` writes the results to BENCH_shard.json.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/shard"
)

// ShardPoint is one measurement: a shard count and the aggregate wall-clock
// operation rate the worker pool sustained against it.
type ShardPoint struct {
	Shards      int     `json:"shards"`
	Ops         int64   `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Speedup     float64 `json:"speedup_vs_1_shard"`
	MutexWaitMs float64 `json:"mutex_wait_ms"`
}

// ShardMix is one operation mix measured across shard counts.
type ShardMix struct {
	Name   string       `json:"name"`
	Points []ShardPoint `json:"points"`
}

// ShardReport is the JSON document gombench writes to BENCH_shard.json.
type ShardReport struct {
	Harness       string     `json:"harness"`
	GoVersion     string     `json:"go_version"`
	NumCPU        int        `json:"num_cpu"`
	GOMAXPROCS    int        `json:"gomaxprocs"`
	NumCPUWarning string     `json:"num_cpu_warning,omitempty"`
	Cuboids       int        `json:"cuboids"`
	BufferPages   int        `json:"buffer_pages_per_shard"`
	Workers       int        `json:"workers"`
	DurationMs    int64      `json:"duration_ms_per_point"`
	ShardCounts   []int      `json:"shard_counts"`
	Mixes         []ShardMix `json:"mixes"`
	Updates       ShardMix   `json:"updates"`
	Notes         string     `json:"notes"`
}

// shardCounts are the measured router widths.
var shardCounts = []int{1, 2, 4, 8}

// shardMixes names the read mixes; see runShardMixOp for the workloads.
var shardMixes = []string{"forward", "backward", "tabular", "mixed"}

// shardWorkers is the fixed driver pool: enough concurrency that per-shard
// locks, not the driver, bound the rate once cores allow it.
const shardWorkers = 8

// NumCPUWarning returns a non-empty caveat when the host cannot exhibit
// parallel speedups at all. The wall-clock reports embed it so a committed
// BENCH_*.json from a single-core CI runner is self-describing.
func NumCPUWarning() string {
	if runtime.NumCPU() > 1 {
		return ""
	}
	return fmt.Sprintf("runtime.NumCPU()==%d: single schedulable CPU; parallel speedups cannot exceed 1x "+
		"and ops/sec reflects serialized execution — rerun on a multi-core host for scaling numbers", runtime.NumCPU())
}

// shardBenchDB builds one warmed n-shard router: the geometry schema on
// every shard, the partitioned cuboid base, and a complete <<volume,weight>>
// GMR per shard. Each shard gets the same warm-cache pool sizing as the
// throughput suite so reads never serialize on miss storms.
func shardBenchDB(cuboids, shards int) (*shard.DB, *fixtures.ShardedGeometry, string, error) {
	db := shard.Open(shard.Config{
		Shards: shards,
		Engine: gomdb.Config{BufferPages: 8192},
	})
	if err := fixtures.DefineGeometrySharded(db, false); err != nil {
		return nil, nil, "", err
	}
	g, err := fixtures.PopulateGeometrySharded(db, cuboids, cuboidSeed)
	if err != nil {
		return nil, nil, "", err
	}
	gmrName := "Gvw"
	if err := db.Materialize(gomdb.MaterializeOptions{
		Name:     gmrName,
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
		Strategy: gomdb.Immediate,
	}); err != nil {
		return nil, nil, "", err
	}
	// Warm every access path the mixes use.
	for _, oid := range g.Cuboids {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(oid)); err != nil {
			return nil, nil, "", err
		}
	}
	if _, err := db.Backward("Cuboid.volume", 0, 50); err != nil {
		return nil, nil, "", err
	}
	if _, err := db.Retrieve(gmrName, []gomdb.FieldSpec{
		gomdb.AnySpec(), gomdb.RangeSpec(0, 50), gomdb.AnySpec(),
	}); err != nil {
		return nil, nil, "", err
	}
	return db, g, gmrName, nil
}

// runShardMixOp performs one operation of the named mix against the router.
func runShardMixOp(db *shard.DB, g *fixtures.ShardedGeometry, gmrName, mix string, rng *rand.Rand) error {
	op := mix
	if mix == "mixed" {
		switch r := rng.Intn(10); {
		case r < 7:
			op = "forward"
		case r < 9:
			op = "backward"
		default:
			op = "tabular"
		}
	}
	switch op {
	case "forward":
		_, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[rng.Intn(len(g.Cuboids))]))
		return err
	case "backward":
		lo := float64(rng.Intn(500))
		_, err := db.Backward("Cuboid.volume", lo, lo+25)
		return err
	case "tabular":
		lo := float64(rng.Intn(500))
		_, err := db.Retrieve(gmrName, []gomdb.FieldSpec{
			gomdb.AnySpec(), gomdb.RangeSpec(lo, lo+25), gomdb.AnySpec(),
		})
		return err
	}
	return fmt.Errorf("bench: unknown shard mix %q", mix)
}

// runShardUpdateOp moves one vertex of a random cuboid: the RRR lookup and
// the <<volume,weight>> invalidation both run on the owning shard alone.
func runShardUpdateOp(db *shard.DB, g *fixtures.ShardedGeometry, rng *rand.Rand) error {
	c := g.Cuboids[rng.Intn(len(g.Cuboids))]
	v, err := db.GetAttr(c, "V1")
	if err != nil {
		return err
	}
	return db.Set(v.R, "X", gomdb.Float(float64(rng.Intn(100))))
}

// measureShard runs one op function against one router for roughly d of
// wall time across the fixed worker pool and returns the point.
func measureShard(db *shard.DB, op func(rng *rand.Rand) error, d time.Duration) (ShardPoint, error) {
	var stop atomic.Bool
	var ops atomic.Int64
	errs := make(chan error, shardWorkers)
	var wg sync.WaitGroup
	waitBefore := mutexWaitSeconds()
	start := time.Now()
	for i := 0; i < shardWorkers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := int64(0)
			for !stop.Load() {
				if err := op(rng); err != nil {
					errs <- err
					return
				}
				n++
			}
			ops.Add(n)
		}(int64(2000 + i))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return ShardPoint{}, err
	}
	waitAfter := mutexWaitSeconds()
	return ShardPoint{
		Shards:      db.Shards(),
		Ops:         ops.Load(),
		OpsPerSec:   float64(ops.Load()) / elapsed.Seconds(),
		MutexWaitMs: (waitAfter - waitBefore) * 1000,
	}, nil
}

// speedups fills Speedup on every point relative to the mix's 1-shard rate.
func speedups(m *ShardMix) {
	if len(m.Points) == 0 || m.Points[0].OpsPerSec == 0 {
		return
	}
	base := m.Points[0].OpsPerSec
	for i := range m.Points {
		m.Points[i].Speedup = m.Points[i].OpsPerSec / base
	}
}

// Shard runs the sharding wall-clock suite and returns the report plus a
// Figure (X = shard count, one series per read mix, Y = ops/sec).
func Shard(sc Scale) (*ShardReport, *Figure, error) {
	n := 800
	d := 250 * time.Millisecond
	if sc.OpsDivisor > 1 { // -short
		n = 200
		d = 60 * time.Millisecond
	}
	rep := &ShardReport{
		Harness:       "gombench -figure shard",
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPUWarning: NumCPUWarning(),
		Cuboids:       n,
		BufferPages:   8192,
		Workers:       shardWorkers,
		DurationMs:    d.Milliseconds(),
		ShardCounts:   shardCounts,
		Notes: "Wall-clock ops/sec of the OID-hash partitioned router at increasing shard counts, driven by a " +
			"fixed worker pool; simulated-clock figures are unaffected. forward is point-routed, backward and " +
			"tabular scatter to every shard and merge deterministically; updates move one vertex per op and " +
			"invalidate through the owning shard's RRR only. speedup_vs_1_shard compares the same mix at 1 shard; " +
			"scaling beyond 1x requires multiple schedulable CPUs.",
	}
	fig := &Figure{
		ID:     "shard",
		Title:  "Wall-clock router throughput vs. shard count",
		XLabel: "shards",
		YLabel: "ops/sec",
	}
	for _, s := range shardCounts {
		fig.X = append(fig.X, float64(s))
	}
	mixes := make([]ShardMix, len(shardMixes))
	for i, mix := range shardMixes {
		mixes[i].Name = mix
	}
	rep.Updates = ShardMix{Name: "vertex-move"}
	for _, shards := range shardCounts {
		db, g, gmrName, err := shardBenchDB(n, shards)
		if err != nil {
			return nil, nil, fmt.Errorf("shard bench x%d: %w", shards, err)
		}
		for i, mix := range shardMixes {
			mix := mix
			pt, err := measureShard(db, func(rng *rand.Rand) error {
				return runShardMixOp(db, g, gmrName, mix, rng)
			}, d)
			if err != nil {
				return nil, nil, fmt.Errorf("shard bench %s x%d: %w", mix, shards, err)
			}
			mixes[i].Points = append(mixes[i].Points, pt)
		}
		pt, err := measureShard(db, func(rng *rand.Rand) error {
			return runShardUpdateOp(db, g, rng)
		}, d)
		if err != nil {
			return nil, nil, fmt.Errorf("shard bench updates x%d: %w", shards, err)
		}
		rep.Updates.Points = append(rep.Updates.Points, pt)
	}
	for i := range mixes {
		speedups(&mixes[i])
	}
	speedups(&rep.Updates)
	rep.Mixes = mixes
	for _, m := range mixes {
		s := Series{Name: m.Name}
		for _, pt := range m.Points {
			s.Points = append(s.Points, pt.OpsPerSec)
		}
		fig.Series = append(fig.Series, s)
	}
	return rep, fig, nil
}

package bench

// The writer-interference suite: wall-clock reader throughput while one
// writer continuously updates the object base. This is the benchmark behind
// the MVCC snapshot read path — before it, a read arriving while a writer
// held the engine's exclusive lock queued behind it (and Go's
// write-preferring RWMutex then queued every later reader too), so reader
// throughput flatlined for the duration of every write burst. With snapshot
// reads, a reader that cannot take the shared lock pins the last published
// version and answers from the capture overlays without blocking.
//
// Two configurations run the identical workload:
//
//   - snapshot: the default engine (MVCC snapshot reads enabled)
//   - rwmutex:  Config.DisableMVCC — the historical blocking read path
//
// Reported reader rates are aggregate wall-clock ops/sec. The simulated
// clock is not consulted; like the rest of the throughput suite this never
// perturbs the figure experiments.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gomdb"
	"gomdb/internal/fixtures"
)

// InterferencePoint is one measurement: reader goroutine count, the
// aggregate reader rate sustained next to the writer, and the writer's own
// rate (the writer must not starve either).
type InterferencePoint struct {
	ReaderGoroutines int     `json:"reader_goroutines"`
	ReaderOps        int64   `json:"reader_ops"`
	ReaderOpsPerSec  float64 `json:"reader_ops_per_sec"`
	WriterOps        int64   `json:"writer_ops"`
	WriterOpsPerSec  float64 `json:"writer_ops_per_sec"`
}

// InterferenceConfig is one engine configuration with its measurements.
type InterferenceConfig struct {
	Name        string              `json:"name"`
	DisableMVCC bool                `json:"disable_mvcc"`
	Points      []InterferencePoint `json:"points"`
}

// InterferenceReport is the writer_interference section of
// BENCH_throughput.json.
type InterferenceReport struct {
	Harness    string               `json:"harness"`
	GoVersion  string               `json:"go_version"`
	NumCPU     int                  `json:"num_cpu"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Cuboids    int                  `json:"cuboids"`
	DurationMs int64                `json:"duration_ms_per_point"`
	Goroutines []int                `json:"reader_goroutine_counts"`
	Configs    []InterferenceConfig `json:"configs"`
	Notes      string               `json:"notes"`
}

// interferenceGoroutines are the measured reader concurrency levels.
var interferenceGoroutines = []int{1, 2, 4, 8}

// interferenceDB builds the warmed database one configuration measures
// against: geometry schema, n cuboids, a complete immediately-maintained
// <<volume,weight>> GMR (so every vertex write rematerializes under the
// exclusive lock — the longest write sections the engine produces).
func interferenceDB(n int, disableMVCC bool) (*gomdb.Database, *fixtures.Geometry, error) {
	db := gomdb.Open(gomdb.Config{BufferPages: 8192, DisableMVCC: disableMVCC})
	if err := fixtures.DefineGeometry(db, false); err != nil {
		return nil, nil, err
	}
	g, err := fixtures.PopulateGeometry(db, n, cuboidSeed)
	if err != nil {
		return nil, nil, err
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
		Strategy: gomdb.Immediate,
	}); err != nil {
		return nil, nil, err
	}
	for _, oid := range g.Cuboids {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(oid)); err != nil {
			return nil, nil, err
		}
	}
	return db, g, nil
}

// writerLoop is the background writer: an endless stream of vertex moves,
// each of which invalidates and immediately rematerializes the cuboid's GMR
// entry while holding the exclusive lock.
func writerLoop(db *gomdb.Database, g *fixtures.Geometry, stop *atomic.Bool, ops *atomic.Int64, errs chan<- error) {
	rng := rand.New(rand.NewSource(7))
	n := int64(0)
	for !stop.Load() {
		oid := g.Cuboids[rng.Intn(len(g.Cuboids))]
		attr := fmt.Sprintf("V%d", 1+rng.Intn(8))
		vref, err := db.GetAttr(oid, attr)
		if err != nil {
			errs <- err
			return
		}
		if err := db.Set(vref.R, "X", gomdb.Float(rng.Float64()*100)); err != nil {
			errs <- err
			return
		}
		n++
	}
	ops.Add(n)
}

// measureInterference runs `readers` reader goroutines for roughly d of wall
// time with the writer running throughout.
func measureInterference(db *gomdb.Database, g *fixtures.Geometry, readers int, d time.Duration) (InterferencePoint, error) {
	var stop atomic.Bool
	var readerOps, writerOps atomic.Int64
	errs := make(chan error, readers+1)
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		writerLoop(db, g, &stop, &writerOps, errs)
	}()
	start := time.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := int64(0)
			for !stop.Load() {
				oid := g.Cuboids[rng.Intn(len(g.Cuboids))]
				if _, err := db.Call("Cuboid.volume", gomdb.Ref(oid)); err != nil {
					errs <- err
					return
				}
				n++
			}
			readerOps.Add(n)
		}(int64(2000 + i))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return InterferencePoint{}, err
	}
	return InterferencePoint{
		ReaderGoroutines: readers,
		ReaderOps:        readerOps.Load(),
		ReaderOpsPerSec:  float64(readerOps.Load()) / elapsed.Seconds(),
		WriterOps:        writerOps.Load(),
		WriterOpsPerSec:  float64(writerOps.Load()) / elapsed.Seconds(),
	}, nil
}

// WriterInterference runs the suite and returns the report plus a Figure
// (X = reader goroutines, one series per configuration, Y = reader ops/sec
// with the writer running).
func WriterInterference(sc Scale) (*InterferenceReport, *Figure, error) {
	n := 800
	d := 250 * time.Millisecond
	if sc.OpsDivisor > 1 { // -short
		n = 200
		d = 60 * time.Millisecond
	}
	configs := []struct {
		name        string
		disableMVCC bool
	}{
		{"snapshot", false},
		{"rwmutex", true},
	}
	rep := &InterferenceReport{
		Harness:    "gombench -figure mvcc",
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Cuboids:    n,
		DurationMs: d.Milliseconds(),
		Goroutines: interferenceGoroutines,
		Notes: "Aggregate wall-clock reader ops/sec while one writer continuously moves vertices " +
			"(each move rematerializes <<volume,weight>> under the exclusive lock). snapshot is the " +
			"default engine (MVCC snapshot reads); rwmutex is Config.DisableMVCC, where readers queue " +
			"behind the writer on a write-preferring RWMutex. Simulated-clock figures are unaffected.",
	}
	fig := &Figure{
		ID:     "mvcc",
		Title:  "Reader throughput under writer interference",
		XLabel: "reader goroutines",
		YLabel: "reader ops/sec",
	}
	for _, gr := range interferenceGoroutines {
		fig.X = append(fig.X, float64(gr))
	}
	for _, cfg := range configs {
		db, g, err := interferenceDB(n, cfg.disableMVCC)
		if err != nil {
			return nil, nil, fmt.Errorf("interference %s: %w", cfg.name, err)
		}
		ic := InterferenceConfig{Name: cfg.name, DisableMVCC: cfg.disableMVCC}
		for _, gr := range interferenceGoroutines {
			pt, err := measureInterference(db, g, gr, d)
			if err != nil {
				return nil, nil, fmt.Errorf("interference %s x%d: %w", cfg.name, gr, err)
			}
			ic.Points = append(ic.Points, pt)
		}
		rep.Configs = append(rep.Configs, ic)
		s := Series{Name: cfg.name}
		for _, pt := range ic.Points {
			s.Points = append(s.Points, pt.ReaderOpsPerSec)
		}
		fig.Series = append(fig.Series, s)
	}
	return rep, fig, nil
}

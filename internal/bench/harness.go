// Package bench reproduces the quantitative analysis of the paper's
// Section 7: the Cuboid benchmarks (Figures 7-11) and the Company benchmarks
// (Figures 13-15), plus the Section 3.1 example table.
//
// Times are *simulated seconds*: physical page I/Os through the 600 KB
// buffer pool at 25 ms each plus a small CPU charge per interpreter step —
// the cost model substituting for the paper's GOM/EXODUS/DECstation setup
// (see DESIGN.md). Absolute values therefore differ from the paper; the
// comparisons between program versions and the break-even points are what
// this package reproduces.
package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Version names a benchmark program version, matching the paper's figure
// legends.
type Version string

// Program versions.
const (
	WithoutGMR Version = "WithoutGMR"
	WithGMR    Version = "WithGMR"
	InfoHiding Version = "InfoHiding"
	LazyStart  Version = "Lazy"       // Figure 10: lazy with all results pre-invalidated
	Immediate  Version = "Immediate"  // company benchmarks
	LazyRemat  Version = "Lazy "      // company benchmarks (lazy rematerialization)
	CompAction Version = "CompAction" // Figure 15
)

func (v Version) String() string { return strings.TrimSpace(string(v)) }

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []float64
}

// Figure is a reproduced table/figure: an x-axis and one series per program
// version.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Print renders the figure as an aligned table.
func (f *Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %14s", s.Name)
	}
	fmt.Fprintf(w, "   [%s]\n", f.YLabel)
	for i, x := range f.X {
		fmt.Fprintf(w, "%-12.4g", x)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(w, " %14.2f", s.Points[i])
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// PrintCSV renders the figure as comma-separated values.
func (f *Figure) PrintCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s: %s (%s)\n", f.ID, f.Title, f.YLabel)
	fmt.Fprintf(w, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, ",%s", s.Name)
	}
	fmt.Fprintln(w)
	for i, x := range f.X {
		fmt.Fprintf(w, "%g", x)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(w, ",%g", s.Points[i])
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// plotMarks assigns one mark per series, mirroring the paper's plot glyphs.
var plotMarks = []byte{'*', '+', 'o', 'x', '#'}

// PrintPlot renders an ASCII scatter plot with a logarithmic y-axis — the
// paper's figures use log-scaled time axes, so crossovers and constant
// factors appear as vertical offsets.
func (f *Figure) PrintPlot(w io.Writer) {
	const width, height = 64, 20
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p > 0 {
				lo = math.Min(lo, p)
				hi = math.Max(hi, p)
			}
		}
	}
	if math.IsInf(lo, 1) || lo == hi {
		fmt.Fprintf(w, "%s: nothing to plot\n", f.ID)
		return
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	xSpan := f.X[len(f.X)-1] - f.X[0]
	if xSpan == 0 {
		xSpan = 1
	}
	for si, s := range f.Series {
		mark := plotMarks[si%len(plotMarks)]
		for i, p := range s.Points {
			if i >= len(f.X) || p <= 0 {
				continue
			}
			col := int(float64(width-1) * (f.X[i] - f.X[0]) / xSpan)
			row := height - 1 - int(float64(height-1)*(math.Log10(p)-logLo)/(logHi-logLo))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}
	fmt.Fprintf(w, "%s: %s  [log10 %s]\n", f.ID, f.Title, f.YLabel)
	for r, rowBytes := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.1f ", hi)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.1f ", lo)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(rowBytes))
	}
	fmt.Fprintf(w, "%10s+%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s %-10g%*s%g  (%s)\n", "", f.X[0], width-20, "", f.X[len(f.X)-1], f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(w, "%10s %c = %s\n", "", plotMarks[si%len(plotMarks)], s.Name)
	}
	fmt.Fprintln(w)
}

// CrossoverX estimates where series a first becomes more expensive than
// series b (linear interpolation between sample points); NaN if never.
// EXPERIMENTS.md uses it to report break-even points.
func (f *Figure) CrossoverX(a, b string) float64 {
	var sa, sb *Series
	for i := range f.Series {
		if f.Series[i].Name == a {
			sa = &f.Series[i]
		}
		if f.Series[i].Name == b {
			sb = &f.Series[i]
		}
	}
	if sa == nil || sb == nil {
		return math.NaN()
	}
	for i := 1; i < len(f.X) && i < len(sa.Points) && i < len(sb.Points); i++ {
		d0 := sa.Points[i-1] - sb.Points[i-1]
		d1 := sa.Points[i] - sb.Points[i]
		if d0 <= 0 && d1 > 0 {
			// Interpolate the zero crossing.
			t := d0 / (d0 - d1)
			return f.X[i-1] + t*(f.X[i]-f.X[i-1])
		}
	}
	return math.NaN()
}

// Scale shrinks benchmark dimensions for quick runs (go test -short).
type Scale struct {
	// Cuboids is the Cuboid database size (paper: 8000).
	Cuboids int
	// OpsDivisor divides the operation counts.
	OpsDivisor int
	// Points thins parameter sweeps to every k-th point (1 = all).
	Points int
	// CompanyDivisor divides the company population.
	CompanyDivisor int
}

// FullScale is the paper's configuration.
func FullScale() Scale { return Scale{Cuboids: 8000, OpsDivisor: 1, Points: 1, CompanyDivisor: 1} }

// ShortScale is a reduced configuration for -short test runs.
func ShortScale() Scale { return Scale{Cuboids: 600, OpsDivisor: 4, Points: 4, CompanyDivisor: 5} }

func (s Scale) ops(n int) int {
	if s.OpsDivisor <= 1 {
		return n
	}
	n /= s.OpsDivisor
	if n < 1 {
		n = 1
	}
	return n
}

// thin selects every k-th element of xs, always keeping the first and last.
func thin(xs []float64, k int) []float64 {
	if k <= 1 || len(xs) <= 2 {
		return xs
	}
	var out []float64
	for i, x := range xs {
		if i%k == 0 || i == len(xs)-1 {
			out = append(out, x)
		}
	}
	return out
}

// seq returns lo, lo+step, ..., up to hi inclusive (with tolerance).
func seq(lo, hi, step float64) []float64 {
	var out []float64
	for x := lo; x <= hi+step/1e6; x += step {
		out = append(out, math.Round(x*1e9)/1e9)
	}
	return out
}

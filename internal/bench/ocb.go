package bench

// The OCB suite: materialization cost across a family of generated object
// bases instead of the two hand-built schemas. Each grid point expands an
// ocb.Params set (class count, fan-out, derived-function depth, attribute
// count, instance count, hot-set skew) into a base plus a reproducible op
// stream, then measures the same stream under immediate vs. lazy vs.
// deferred rematerialization, with and without one trace-driven reclustering
// pass. All numbers are simulated Clock charges: the committed
// BENCH_ocb.json is byte-identical run to run for the fixed seed.
//
// Measurement protocol per cell: build, materialize the point's GMR catalog
// under the cell's strategy, run the stream once unmeasured (warms the pool
// to the steady state an identical stream produces AND records the forward
// traces clustering feeds on), optionally recluster, flush, then measure the
// second pass. Result values are collected each pass and must be identical
// across every cell of a point — strategy and layout may never change an
// answer.
//
// The deep-chain point is the trade-off the hand-built fixtures cannot
// express: reference chains of depth 8 at fan-out 1 under an update-heavy,
// hot-skewed read-light stream. Deferred rematerialization recomputes every
// invalidated deep entry at each flush boundary whether or not anyone will
// read it; lazy recomputes only the hot-set entries the stream actually
// touches, and each recompute walks the full chain either way — so lazy
// undercuts deferred on CPU, inverting the ordering every geometry figure
// shows.

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"

	"gomdb"
	"gomdb/internal/ocb"
)

// ocbSeed fixes every base and stream of the suite.
const ocbSeed = 2641

// ocbSelfDescription is the num_cpu_warning for this figure: unlike the
// wall-clock suites, core count cannot perturb these numbers.
const ocbSelfDescription = "all numbers are simulated Clock charges: deterministic, byte-identical run to run, " +
	"and independent of core count (num_cpu is recorded for provenance only)"

// OCBCell is one (strategy, clustering) measurement of a grid point's
// op stream — simulated charges of the second, steady-state pass.
type OCBCell struct {
	Strategy   string  `json:"strategy"`
	Clustered  bool    `json:"clustered"`
	PhysReads  int64   `json:"phys_reads"`
	PhysWrites int64   `json:"phys_writes"`
	CPUOps     int64   `json:"cpu_ops"`
	SimSeconds float64 `json:"sim_seconds"`
}

// OCBMix is one Params grid point with its six cells.
type OCBMix struct {
	Name    string     `json:"name"`
	Params  ocb.Params `json:"params"`
	Objects int        `json:"objects"`
	// HeapPages and BufferPages size the working set against the pool (a
	// quarter of the heap, floor 12, as in the clustering suite).
	HeapPages   int       `json:"heap_pages"`
	BufferPages int       `json:"buffer_pages"`
	Ops         int       `json:"ops"`
	Cells       []OCBCell `json:"cells"`
	// ResultsIdentical asserts every cell's stream returned byte-identical
	// values — neither strategy nor layout may change an answer.
	ResultsIdentical bool `json:"results_identical"`
	// LazyOverDeferredCPU is lazy CPUOps / deferred CPUOps (unclustered):
	// < 1 means lazy beat deferred on this point.
	LazyOverDeferredCPU float64 `json:"lazy_over_deferred_cpu"`
}

// OCBReport is the JSON document gombench writes to BENCH_ocb.json.
type OCBReport struct {
	Harness       string   `json:"harness"`
	GoVersion     string   `json:"go_version"`
	NumCPU        int      `json:"num_cpu"`
	NumCPUWarning string   `json:"num_cpu_warning"`
	Seed          int64    `json:"seed"`
	Mixes         []OCBMix `json:"mixes"`
	// Tradeoff calls out the grid point demonstrating a materialization
	// trade-off the hand-built schemas cannot show.
	Tradeoff string `json:"tradeoff"`
	Notes    string `json:"notes"`
}

// ocbMixDef is one grid point definition.
type ocbMixDef struct {
	Name string
	P    ocb.Params
	Ops  int
	W    ocb.Weights
}

// ocbReadHeavy is the forward-dominant profile without mat/demat, snapshot,
// or GC ops, so streams are re-runnable against an externally materialized
// catalog and every op charges the measured clock.
func ocbReadHeavy() ocb.Weights {
	return ocb.Weights{Forward: 35, Update: 15, Batch: 8, Backward: 8, Sum: 4,
		Retrieve: 6, Flush: 8}
}

// ocbMixes is the Params grid. baseline-small is the OCB baseline shape at
// bench scale; deep-chain is the lazy-beats-deferred regime; wide-fan
// stresses broad support sets; flat-hot is the degenerate no-reference base
// under extreme skew (pure hot-set caching behavior).
func ocbMixes(sc Scale) []ocbMixDef {
	mixes := []ocbMixDef{
		{
			Name: "baseline-small",
			P: ocb.Params{Classes: 6, FanOut: 3, Depth: 3, NumAttrs: 4,
				Instances: 60, HotFraction: 0.2, Skew: 0.8},
			Ops: 400,
			W:   ocbReadHeavy(),
		},
		{
			Name: "deep-chain",
			P: ocb.Params{Classes: 9, FanOut: 1, Depth: 8, NumAttrs: 3,
				Instances: 80, HotFraction: 0.15, Skew: 0.9},
			Ops: 400,
			W:   ocb.UpdateHeavyWeights(),
		},
		{
			Name: "wide-fan",
			P: ocb.Params{Classes: 3, FanOut: 8, Depth: 2, NumAttrs: 4,
				Instances: 48, HotFraction: 0.25, Skew: 0.7},
			Ops: 400,
			W:   ocbReadHeavy(),
		},
		{
			Name: "flat-hot",
			P: ocb.Params{Classes: 1, FanOut: 0, Depth: 0, NumAttrs: 8,
				Instances: 400, HotFraction: 0.1, Skew: 0.95},
			Ops: 400,
			W:   ocbReadHeavy(),
		},
	}
	if sc.OpsDivisor > 1 {
		for i := range mixes {
			mixes[i].Ops = 400 / sc.OpsDivisor
			if mixes[i].P.Instances > 16 {
				mixes[i].P.Instances /= 2
			}
		}
	}
	return mixes
}

var ocbStrategies = []struct {
	Name string
	S    gomdb.Strategy
}{
	{"immediate", gomdb.Immediate},
	{"lazy", gomdb.Lazy},
	{"deferred", gomdb.Deferred},
}

// OCB runs the synthetic-workload grid and returns the report plus a figure
// (simulated seconds per stream, one series per strategy, unclustered, plus
// the lazy+clustered series).
func OCB(sc Scale) (*OCBReport, *Figure, error) {
	mixes := ocbMixes(sc)
	rep := &OCBReport{
		Harness:       "gombench -figure ocb",
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		NumCPUWarning: ocbSelfDescription,
		Seed:          ocbSeed,
		Notes: "second-of-two-passes steady-state measurement; pool = heap/4; " +
			"streams are mat/demat-free so both passes run against the same catalog; " +
			"results_identical pins value equality across all six cells of each point",
	}
	fig := &Figure{
		ID:     "ocb",
		Title:  "OCB synthetic grid: simulated cost per op stream (immediate/lazy/deferred, clustering off/on)",
		XLabel: "grid point",
		YLabel: "SimSeconds",
	}
	series := map[string]*Series{}
	order := []string{"immediate", "lazy", "deferred", "lazy+clustered"}
	for _, name := range order {
		series[name] = &Series{Name: name}
	}

	for mi, def := range mixes {
		fig.X = append(fig.X, float64(mi))
		mix, err := runOCBMix(def)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", def.Name, err)
		}
		rep.Mixes = append(rep.Mixes, *mix)
		for _, cell := range mix.Cells {
			key := cell.Strategy
			if cell.Clustered {
				if cell.Strategy != "lazy" {
					continue
				}
				key = "lazy+clustered"
			}
			series[key].Points = append(series[key].Points, cell.SimSeconds)
		}
	}
	for _, name := range order {
		fig.Series = append(fig.Series, *series[name])
	}

	for _, m := range rep.Mixes {
		if m.Name != "deep-chain" {
			continue
		}
		var lazyCPU, defCPU int64
		for _, c := range m.Cells {
			if c.Clustered {
				continue
			}
			switch c.Strategy {
			case "lazy":
				lazyCPU = c.CPUOps
			case "deferred":
				defCPU = c.CPUOps
			}
		}
		if lazyCPU > 0 && defCPU > lazyCPU {
			rep.Tradeoff = fmt.Sprintf(
				"deep-chain (Classes=9, FanOut=1, Depth=8, update-heavy hot-skewed stream): "+
					"lazy spends %.1fx less simulated CPU than deferred (%d vs %d CPU ops) — "+
					"deferred recomputes every invalidated depth-8 entry at each flush whether or not it is read; "+
					"lazy recomputes only the hot-set entries the stream touches. "+
					"The hand-built geometry/company schemas have no deep low-fan-out chains, so they cannot show this inversion.",
				float64(defCPU)/float64(lazyCPU), lazyCPU, defCPU)
		} else {
			rep.Tradeoff = fmt.Sprintf(
				"deep-chain: lazy %d vs deferred %d CPU ops (unclustered)", lazyCPU, defCPU)
		}
	}
	return rep, fig, nil
}

// runOCBMix measures all six cells of one grid point.
func runOCBMix(def ocbMixDef) (*OCBMix, error) {
	// Probe build: learn the heap footprint so the pool holds a quarter of it.
	base, err := ocb.Gen(def.P, ocbSeed)
	if err != nil {
		return nil, err
	}
	probe := gomdb.Open(gomdb.Config{BufferPages: 256})
	if err := ocb.Define(probe, def.P); err != nil {
		return nil, err
	}
	if _, err := ocb.Populate(probe, base); err != nil {
		return nil, err
	}
	heapPages := probe.Objects.HeapPages()
	pool := heapPages / 4
	if pool < 12 {
		pool = 12
	}

	mix := &OCBMix{
		Name:        def.Name,
		Params:      def.P,
		Objects:     def.P.Classes * def.P.Instances,
		HeapPages:   heapPages,
		BufferPages: pool,
		Ops:         def.Ops,
	}
	stream := ocb.GenStream(def.P, ocbSeed+1, ocb.StreamOptions{
		Ops: def.Ops, W: def.W, AuditEvery: -1})

	var first []string
	mix.ResultsIdentical = true
	for _, clustered := range []bool{false, true} {
		for _, strat := range ocbStrategies {
			cell, results, err := runOCBCell(def, base, stream, strat.S, strat.Name, clustered, pool)
			if err != nil {
				return nil, fmt.Errorf("%s clustered=%v: %w", strat.Name, clustered, err)
			}
			if first == nil {
				first = results
			} else if !reflect.DeepEqual(first, results) {
				mix.ResultsIdentical = false
			}
			mix.Cells = append(mix.Cells, *cell)
		}
	}
	var lazyCPU, defCPU int64
	for _, c := range mix.Cells {
		if c.Clustered {
			continue
		}
		switch c.Strategy {
		case "lazy":
			lazyCPU = c.CPUOps
		case "deferred":
			defCPU = c.CPUOps
		}
	}
	if defCPU > 0 {
		mix.LazyOverDeferredCPU = float64(lazyCPU) / float64(defCPU)
	}
	return mix, nil
}

func runOCBCell(def ocbMixDef, base *ocb.Base, stream []ocb.Op, strat gomdb.Strategy, stratName string, clustered bool, pool int) (*OCBCell, []string, error) {
	db := gomdb.Open(gomdb.Config{BufferPages: pool})
	if err := ocb.Define(db, def.P); err != nil {
		return nil, nil, err
	}
	w, err := ocb.Populate(db, base)
	if err != nil {
		return nil, nil, err
	}
	for _, spec := range ocb.Catalog(def.P) {
		if _, err := db.Materialize(gomdb.MaterializeOptions{
			Name: spec.Name, Funcs: spec.Funcs, Complete: spec.Complete,
			MaxEntries: spec.MaxEntries, Strategy: strat, Mode: gomdb.ModeObjDep,
		}); err != nil {
			return nil, nil, fmt.Errorf("materialize %s: %w", spec.Name, err)
		}
	}

	// Unmeasured pass: steady-state pool, forward traces for clustering.
	if _, err := applyOCBStream(db, w, def.P, stream); err != nil {
		return nil, nil, err
	}
	if clustered {
		if _, err := db.Recluster(); err != nil {
			return nil, nil, fmt.Errorf("recluster: %w", err)
		}
	}
	if err := db.Flush(); err != nil {
		return nil, nil, err
	}

	start := db.Clock.Snapshot()
	results, err := applyOCBStream(db, w, def.P, stream)
	if err != nil {
		return nil, nil, err
	}
	d := db.Clock.Sub(start)
	return &OCBCell{
		Strategy:   stratName,
		Clustered:  clustered,
		PhysReads:  d.PhysReads,
		PhysWrites: d.PhysWrites,
		CPUOps:     d.CPUOps,
		SimSeconds: d.SimSeconds(),
	}, results, nil
}

// applyOCBStream drives a mat/demat-free stream and renders every read
// result canonically. Operational errors surface as returned errors here —
// unlike the sim, the bench expects a fault-free engine.
func applyOCBStream(db *gomdb.Database, w *ocb.World, p ocb.Params, ops []ocb.Op) ([]string, error) {
	c0 := w.Classes[0]
	var out []string
	setOne := func(a interface {
		Set(oid gomdb.OID, attr string, v gomdb.Value) error
	}, op ocb.Op) error {
		cls := w.Classes[op.N%p.Classes]
		return a.Set(cls[op.X%len(cls)], op.S, gomdb.Float(op.F[0]))
	}
	for i, op := range ops {
		switch op.Kind {
		case "forward":
			v, err := db.Call(op.S, gomdb.Ref(c0[op.X%len(c0)]))
			if err != nil {
				return nil, fmt.Errorf("op %d forward %s: %w", i, op.S, err)
			}
			out = append(out, fmt.Sprintf("%s(%d)=%s", op.S, op.X, v))
		case "set-value":
			if err := setOne(db, op); err != nil {
				return nil, fmt.Errorf("op %d set: %w", i, err)
			}
		case "batch":
			err := db.Batch(func(tx *gomdb.Tx) error {
				for _, sub := range op.Sub {
					if err := setOne(tx, sub); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("op %d batch: %w", i, err)
			}
		case "backward":
			// Reverse lookups, sums, and retrieves over a function outside the
			// materialized catalog answer with a deterministic error line, as
			// in the sim driver — the stream generator draws from all forward
			// functions, the catalog materializes four of them.
			ms, err := db.Backward(op.S, op.F[0], op.F[1])
			if err != nil {
				out = append(out, fmt.Sprintf("bw %s ERR %v", op.S, err))
				continue
			}
			parts := make([]string, len(ms))
			for j, m := range ms {
				parts[j] = m.Result.String()
			}
			out = append(out, fmt.Sprintf("bw %s=%d[%s]", op.S, len(ms), strings.Join(parts, ",")))
		case "sum":
			k := 1 + op.N%len(c0)
			s, err := db.Sum(op.S, c0[:k])
			if err != nil {
				out = append(out, fmt.Sprintf("sum %s ERR %v", op.S, err))
				continue
			}
			out = append(out, fmt.Sprintf("sum %s/%d=%g", op.S, k, s))
		case "retrieve":
			cat := ocb.Catalog(p)
			spec := cat[op.X%len(cat)]
			rows, err := db.Retrieve(spec.Name, []gomdb.FieldSpec{
				gomdb.AnySpec(), gomdb.RangeSpec(op.F[0], op.F[1])})
			if err != nil {
				out = append(out, fmt.Sprintf("rt %s ERR %v", spec.Name, err))
				continue
			}
			out = append(out, fmt.Sprintf("rt %s=%d", spec.Name, len(rows)))
		case "flush":
			if err := db.Flush(); err != nil {
				return nil, fmt.Errorf("op %d flush: %w", i, err)
			}
		}
	}
	return out, nil
}

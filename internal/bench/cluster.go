package bench

// The clustering suite: how much physical I/O does trace-driven object
// clustering (Database.Recluster) save on rematerialization sweeps? Three
// object bases are built with deliberately poor initial layout, a GMR is
// materialized over each (recording forward traces), and the same
// invalidate-everything-then-recompute-everything sweep is measured before
// and after one reclustering pass. Results must be value-identical across
// the relocation — OIDs are the engine's only names, so a placement change
// can never change an answer — and the interesting output is the drop in
// simulated physical reads and the buffer miss rate.
//
// Each measurement is the SECOND of two identical sweeps: the first
// (unmeasured) pass recomputes every entry and leaves the buffer pool in the
// steady state an identical sweep produces, so the before/after comparison
// is not polluted by whatever the populate or relocation phases happened to
// leave resident.
//
// `gombench -figure cluster` writes the results to BENCH_cluster.json.

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"

	"gomdb"
	"gomdb/internal/fixtures"
)

// clusterSeed fixes every workload of the suite.
const clusterSeed = 1733

// ClusterPass is one measured rematerialization sweep.
type ClusterPass struct {
	PhysReads  int64   `json:"phys_reads"`
	PhysWrites int64   `json:"phys_writes"`
	SimSeconds float64 `json:"sim_seconds"`
	// BufferMissRate is misses/(hits+misses) of the buffer pool during the
	// sweep.
	BufferMissRate float64 `json:"buffer_miss_rate"`
}

// ClusterMix is one object base: the same sweep measured before and after
// reclustering.
type ClusterMix struct {
	Name    string `json:"name"`
	Objects int    `json:"objects"`
	// HeapPages and BufferPages size the working set against the pool: the
	// pool holds a quarter of the object heap, so rematerialization sweeps
	// must go to disk and the layout decides how often.
	HeapPages   int `json:"heap_pages"`
	BufferPages int `json:"buffer_pages"`
	// Calls is the number of forward calls per sweep.
	Calls     int         `json:"calls"`
	Scattered ClusterPass `json:"scattered"`
	Clustered ClusterPass `json:"clustered"`
	// ReadReduction is 1 - clustered.PhysReads/scattered.PhysReads.
	ReadReduction float64 `json:"read_reduction"`
	// ResultsIdentical asserts the sweep returned bit-identical values
	// before and after the relocation.
	ResultsIdentical bool                   `json:"results_identical"`
	Recluster        *gomdb.ReclusterReport `json:"recluster"`
}

// ClusterReport is the JSON document gombench writes to BENCH_cluster.json.
type ClusterReport struct {
	Harness   string       `json:"harness"`
	GoVersion string       `json:"go_version"`
	NumCPU    int          `json:"num_cpu"`
	Mixes     []ClusterMix `json:"mixes"`
	Notes     string       `json:"notes"`
}

// clusterSweep recomputes every entry of the mix's GMR in canonical order
// and returns the results.
type clusterSweep func() ([]float64, error)

// clusterBase is one built object base ready for measurement.
type clusterBase struct {
	db      *gomdb.Database
	gmr     string
	objects int
	calls   int
	sweep   clusterSweep
}

// sortedOIDs returns a sorted copy — every sweep walks its entries in OID
// order, the canonical order the clustered layout is laid out for.
func sortedOIDs(oids []gomdb.OID) []gomdb.OID {
	out := append([]gomdb.OID(nil), oids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// callSweep builds a sweep that calls each listed function on each object.
func callSweep(db *gomdb.Database, oids []gomdb.OID, fns ...string) clusterSweep {
	sorted := sortedOIDs(oids)
	return func() ([]float64, error) {
		out := make([]float64, 0, len(sorted)*len(fns))
		for _, oid := range sorted {
			for _, fn := range fns {
				v, err := db.Call(fn, gomdb.Ref(oid))
				if err != nil {
					return nil, fmt.Errorf("%s(%s): %w", fn, oid, err)
				}
				out = append(out, v.F)
			}
		}
		return out, nil
	}
}

// measureSweep runs one measured rematerialization sweep: invalidate every
// entry, run an unmeasured normalization pass (recompute + steady-state the
// pool), invalidate again, then measure the recomputation sweep.
func measureSweep(b *clusterBase) (ClusterPass, []float64, error) {
	if err := b.db.GMRs.InvalidateAll(b.gmr); err != nil {
		return ClusterPass{}, nil, err
	}
	if _, err := b.sweep(); err != nil {
		return ClusterPass{}, nil, err
	}
	if err := b.db.GMRs.InvalidateAll(b.gmr); err != nil {
		return ClusterPass{}, nil, err
	}
	h0, m0 := b.db.Pool.HitStats()
	start := b.db.Clock.Snapshot()
	vals, err := b.sweep()
	if err != nil {
		return ClusterPass{}, nil, err
	}
	d := b.db.Clock.Sub(start)
	h1, m1 := b.db.Pool.HitStats()
	pass := ClusterPass{
		PhysReads:  d.PhysReads,
		PhysWrites: d.PhysWrites,
		SimSeconds: d.SimSeconds(),
	}
	if dh, dm := h1-h0, m1-m0; dh+dm > 0 {
		pass.BufferMissRate = float64(dm) / float64(dh+dm)
	}
	return pass, vals, nil
}

// runClusterMix builds one base twice — a probe build to learn the object
// heap's size, then the measured build with a buffer pool holding a quarter
// of it — and measures the sweep before and after reclustering.
func runClusterMix(name string, build func(bufferPages int) (*clusterBase, error)) (ClusterMix, error) {
	probe, err := build(0)
	if err != nil {
		return ClusterMix{}, fmt.Errorf("cluster %s (probe): %w", name, err)
	}
	heapPages := probe.db.Objects.HeapPages()
	pool := heapPages / 4
	if pool < 12 {
		pool = 12
	}
	b, err := build(pool)
	if err != nil {
		return ClusterMix{}, fmt.Errorf("cluster %s: %w", name, err)
	}
	mix := ClusterMix{
		Name: name, Objects: b.db.Objects.NumObjects(), Calls: b.calls,
		HeapPages: heapPages, BufferPages: pool,
	}
	scattered, before, err := measureSweep(b)
	if err != nil {
		return ClusterMix{}, fmt.Errorf("cluster %s (scattered): %w", name, err)
	}
	mix.Scattered = scattered
	rep, err := b.db.Recluster()
	if err != nil {
		return ClusterMix{}, fmt.Errorf("cluster %s (recluster): %w", name, err)
	}
	mix.Recluster = rep
	clustered, after, err := measureSweep(b)
	if err != nil {
		return ClusterMix{}, fmt.Errorf("cluster %s (clustered): %w", name, err)
	}
	mix.Clustered = clustered
	mix.ResultsIdentical = reflect.DeepEqual(before, after)
	if scattered.PhysReads > 0 {
		mix.ReadReduction = 1 - float64(clustered.PhysReads)/float64(scattered.PhysReads)
	}
	return mix, nil
}

// buildScatteredCuboids builds the cuboid mix with a shuffled populate: the
// 8n boundary vertices are created in one globally shuffled order, so the
// eight vertices one volume computation reads land on eight unrelated pages
// anywhere in the heap. (A merely column-major order would not do: a sweep
// in cuboid order advances eight sequential streams that a handful of buffer
// frames absorb.) The paper's cuboid-at-a-time populate
// (fixtures.PopulateGeometry) would hand the clustering pass a near-optimal
// layout for free; this one makes it earn the reduction.
func buildScatteredCuboids(n, bufferPages int) (*clusterBase, error) {
	cfg := gomdb.DefaultConfig()
	cfg.BufferPages = bufferPages
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(clusterSeed))
	mats := make([]gomdb.OID, len(fixtures.Materials))
	for i, m := range fixtures.Materials {
		oid, err := db.New("Material", gomdb.Str(m.Name), gomdb.Float(m.SpecWeight))
		if err != nil {
			return nil, err
		}
		mats[i] = oid
	}
	type box struct{ ox, oy, oz, l, w, h float64 }
	boxes := make([]box, n)
	for i := range boxes {
		boxes[i] = box{
			ox: rng.Float64() * 100, oy: rng.Float64() * 100, oz: rng.Float64() * 100,
			l: 1 + rng.Float64()*9, w: 1 + rng.Float64()*9, h: 1 + rng.Float64()*9,
		}
	}
	// Standard corner order (fixtures.NewCuboid): V2 = V1 + l·x̂, V4 = V1 +
	// w·ŷ, V5 = V1 + h·ẑ.
	corner := func(b box, c int) (x, y, z float64) {
		dx := []float64{0, b.l, b.l, 0, 0, b.l, b.l, 0}
		dy := []float64{0, 0, b.w, b.w, 0, 0, b.w, b.w}
		dz := []float64{0, 0, 0, 0, b.h, b.h, b.h, b.h}
		return b.ox + dx[c], b.oy + dy[c], b.oz + dz[c]
	}
	verts := make([][]gomdb.OID, 8)
	for c := range verts {
		verts[c] = make([]gomdb.OID, n)
	}
	type slot struct{ i, c int }
	slots := make([]slot, 0, 8*n)
	for i := 0; i < n; i++ {
		for c := 0; c < 8; c++ {
			slots = append(slots, slot{i, c})
		}
	}
	rng.Shuffle(len(slots), func(a, b int) { slots[a], slots[b] = slots[b], slots[a] })
	for _, s := range slots {
		x, y, z := corner(boxes[s.i], s.c)
		oid, err := db.New("Vertex", gomdb.Float(x), gomdb.Float(y), gomdb.Float(z))
		if err != nil {
			return nil, err
		}
		verts[s.c][s.i] = oid
	}
	cuboids := make([]gomdb.OID, n)
	for i := 0; i < n; i++ {
		attrs := make([]gomdb.Value, 0, 11)
		for c := 0; c < 8; c++ {
			attrs = append(attrs, gomdb.Ref(verts[c][i]))
		}
		attrs = append(attrs,
			gomdb.Ref(mats[rng.Intn(len(mats))]),
			gomdb.Float(10+rng.Float64()*90),
			gomdb.Int(int64(i+1)))
		oid, err := db.New("Cuboid", attrs...)
		if err != nil {
			return nil, err
		}
		cuboids[i] = oid
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Name: "Gcl", Funcs: []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true, Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	}); err != nil {
		return nil, err
	}
	return &clusterBase{
		db: db, gmr: "Gcl", objects: db.Objects.NumObjects(),
		calls: 2 * n, sweep: callSweep(db, cuboids, "Cuboid.volume", "Cuboid.weight"),
	}, nil
}

// buildCompanyRanking builds the company mix with an interleaved populate:
// all projects first, then every job of every employee created round-robin
// (employee 1's first job, employee 2's first job, ..., employee 1's second
// job, ...), then the employees. One ranking computation therefore reads a
// job history spread nEmps records apart across the whole job region, plus
// project objects laid down long before. (fixtures.PopulateCompany creates
// each employee's history contiguously — a layout the clustering pass could
// barely improve on.)
func buildCompanyRanking(nEmps, projects, jobsPerEmp, bufferPages int) (*clusterBase, error) {
	cfg := gomdb.DefaultConfig()
	cfg.BufferPages = bufferPages
	db := gomdb.Open(cfg)
	if err := fixtures.DefineCompany(db); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(clusterSeed))
	projs := make([]gomdb.OID, projects)
	for i := range projs {
		progSet, err := db.NewSet("Employees")
		if err != nil {
			return nil, err
		}
		oid, err := db.New("Project",
			gomdb.Str(fmt.Sprintf("P%04d", i+1)),
			gomdb.Float(float64(rng.Intn(2001)-1000)),
			gomdb.Int(int64(1000+rng.Intn(99000))),
			gomdb.Ref(progSet))
		if err != nil {
			return nil, err
		}
		projs[i] = oid
	}
	jobs := make([][]gomdb.Value, nEmps)
	for r := 0; r < jobsPerEmp; r++ {
		for e := 0; e < nEmps; e++ {
			job, err := db.New("Job",
				gomdb.Ref(projs[rng.Intn(len(projs))]),
				gomdb.Int(int64(100+rng.Intn(9900))),
				gomdb.Bool(rng.Intn(2) == 0),
				gomdb.Bool(rng.Intn(2) == 0))
			if err != nil {
				return nil, err
			}
			jobs[e] = append(jobs[e], gomdb.Ref(job))
		}
	}
	emps := make([]gomdb.OID, nEmps)
	for e := range emps {
		hist, err := db.NewSet("Jobs", jobs[e]...)
		if err != nil {
			return nil, err
		}
		oid, err := db.New("Employee",
			gomdb.Str(fmt.Sprintf("E%05d", e+1)),
			gomdb.Int(int64(e+1)),
			gomdb.Float(30000+float64(rng.Intn(70000))),
			gomdb.Ref(hist))
		if err != nil {
			return nil, err
		}
		emps[e] = oid
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Name: "Grk", Funcs: []string{"Employee.ranking"},
		Complete: true, Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	}); err != nil {
		return nil, err
	}
	return &clusterBase{
		db: db, gmr: "Grk", objects: db.Objects.NumObjects(),
		calls: nEmps, sweep: callSweep(db, emps, "Employee.ranking"),
	}, nil
}

// buildRandomSets builds the random-graph mix: a seeded random bipartite
// graph of Workpieces sets over cuboids — each set holds k cuboids drawn
// uniformly from the whole base, so a total_volume computation reads members
// scattered across the entire heap. The placement the clustering pass finds
// here is one no populate order could produce.
func buildRandomSets(n, nSets, perSet, bufferPages int) (*clusterBase, error) {
	cfg := gomdb.DefaultConfig()
	cfg.BufferPages = bufferPages
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		return nil, err
	}
	g, err := fixtures.PopulateGeometry(db, n, clusterSeed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(clusterSeed + 1))
	sets := make([]gomdb.OID, nSets)
	for i := range sets {
		refs := make([]gomdb.Value, perSet)
		for j := range refs {
			refs[j] = gomdb.Ref(g.Cuboids[rng.Intn(len(g.Cuboids))])
		}
		oid, err := db.NewSet("Workpieces", refs...)
		if err != nil {
			return nil, err
		}
		sets[i] = oid
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Name: "Gtv", Funcs: []string{"Workpieces.total_volume"},
		Complete: true, Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
	}); err != nil {
		return nil, err
	}
	return &clusterBase{
		db: db, gmr: "Gtv", objects: db.Objects.NumObjects(),
		calls: nSets, sweep: callSweep(db, sets, "Workpieces.total_volume"),
	}, nil
}

// Cluster runs the clustering suite and returns the report plus a Figure
// (X = mix index, one series per layout, Y = physical reads per sweep).
func Cluster(sc Scale) (*ClusterReport, *Figure, error) {
	nCuboids, emps, projs, jobs := 2000, 400, 200, 6
	nRand, nSets, perSet := 600, 150, 8
	if sc.OpsDivisor > 1 { // -short
		nCuboids, emps, projs, jobs = 400, 80, 60, 4
		nRand, nSets, perSet = 200, 60, 6
	}
	rep := &ClusterReport{
		Harness:   "gombench -figure cluster",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Notes: "Physical reads and buffer miss rate of an invalidate-all + recompute-all sweep over each GMR, " +
			"before (scattered) and after (clustered) one Database.Recluster pass driven by the forward traces " +
			"the materializations recorded. Each measurement is the second of two identical sweeps, so the pool " +
			"enters it in the steady state of that layout. Sweep results are asserted value-identical across the " +
			"relocation (results_identical).",
	}
	type build struct {
		name string
		run  func(bufferPages int) (*clusterBase, error)
	}
	builds := []build{
		{"cuboid-scattered", func(bp int) (*clusterBase, error) { return buildScatteredCuboids(nCuboids, bp) }},
		{"company-ranking", func(bp int) (*clusterBase, error) { return buildCompanyRanking(emps, projs, jobs, bp) }},
		{"random-sets", func(bp int) (*clusterBase, error) { return buildRandomSets(nRand, nSets, perSet, bp) }},
	}
	fig := &Figure{
		ID:     "cluster",
		Title:  "Trace-driven clustering: rematerialization sweep cost by layout",
		XLabel: "mix#",
		YLabel: "physical reads per sweep",
		Series: []Series{{Name: "Scattered"}, {Name: "Clustered"}},
	}
	for i, b := range builds {
		mix, err := runClusterMix(b.name, b.run)
		if err != nil {
			return nil, nil, err
		}
		rep.Mixes = append(rep.Mixes, mix)
		fig.X = append(fig.X, float64(i+1))
		fig.Series[0].Points = append(fig.Series[0].Points, float64(mix.Scattered.PhysReads))
		fig.Series[1].Points = append(fig.Series[1].Points, float64(mix.Clustered.PhysReads))
	}
	return rep, fig, nil
}

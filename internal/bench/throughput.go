package bench

// The wall-clock throughput suite. Unlike the figure experiments, which
// report *simulated* seconds, this file measures real operations per second
// of the concurrent read path at increasing goroutine counts — the
// VOODB-style repeatable harness the ROADMAP's "as fast as the hardware
// allows" goal needs. Three engine configurations are compared:
//
//   - single-mutex: BufferShards = 1, the historical globally locked pool
//   - striped:      the default lock-striped pool
//   - striped+memo: striped pool plus the forward-lookup memo cache
//
// Because the simulated clock is independent of wall time, none of this
// perturbs the figure experiments; `gombench -figure throughput` writes the
// results to BENCH_throughput.json to seed the performance trajectory.

import (
	"fmt"
	"math/rand"
	"runtime"
	runtimemetrics "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"gomdb"
	"gomdb/internal/fixtures"
)

// ThroughputPoint is one measurement: a goroutine count and the aggregate
// wall-clock operation rate it sustained.
type ThroughputPoint struct {
	Goroutines  int     `json:"goroutines"`
	Ops         int64   `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Speedup     float64 `json:"speedup_vs_1"`
	MutexWaitMs float64 `json:"mutex_wait_ms"`
}

// ThroughputMix is one operation mix measured across goroutine counts.
type ThroughputMix struct {
	Name   string            `json:"name"`
	Points []ThroughputPoint `json:"points"`
}

// ThroughputConfig is one engine configuration with all its mixes.
type ThroughputConfig struct {
	Name         string          `json:"name"`
	BufferShards int             `json:"buffer_shards"`
	MemoCache    bool            `json:"memo_cache"`
	Mixes        []ThroughputMix `json:"mixes"`
}

// ThroughputReport is the JSON document gombench writes to
// BENCH_throughput.json.
type ThroughputReport struct {
	Harness    string `json:"harness"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPUWarning is non-empty when the host has a single schedulable
	// CPU and the scaling numbers are therefore vacuous (see NumCPUWarning).
	NumCPUWarning string             `json:"num_cpu_warning,omitempty"`
	Cuboids       int                `json:"cuboids"`
	BufferPages   int                `json:"buffer_pages"`
	DurationMs    int64              `json:"duration_ms_per_point"`
	Goroutines    []int              `json:"goroutine_counts"`
	Configs       []ThroughputConfig `json:"configs"`
	Notes         string             `json:"notes"`
	// WriterInterference is the reader-throughput-under-a-writer suite
	// (mvcc.go); `gombench -figure throughput` fills it alongside the
	// quiescent mixes, and `gombench -figure mvcc` refreshes it alone.
	WriterInterference *InterferenceReport `json:"writer_interference,omitempty"`
}

// throughputGoroutines are the measured concurrency levels (the -cpu 1,2,4,8
// sweep of the testing.B suite).
var throughputGoroutines = []int{1, 2, 4, 8}

// throughputMixes names the operation mixes; see runMixOp for the workloads.
var throughputMixes = []string{"forward", "retrieve", "query", "mixed"}

// throughputDB builds one warmed database for a configuration: the geometry
// schema, n cuboids, and a complete <<volume,weight>> GMR. The buffer pool
// is sized to hold the working set — read *scalability* is measured on a
// warm cache, where the paper's deliberately tiny 150-page pool would turn
// every measurement into a serialized miss storm.
func throughputDB(n, shards int, memo bool) (*gomdb.Database, *fixtures.Geometry, string, error) {
	db := gomdb.Open(gomdb.Config{BufferPages: 8192, BufferShards: shards})
	if err := fixtures.DefineGeometry(db, false); err != nil {
		return nil, nil, "", err
	}
	g, err := fixtures.PopulateGeometry(db, n, cuboidSeed)
	if err != nil {
		return nil, nil, "", err
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:     []string{"Cuboid.volume", "Cuboid.weight"},
		Complete:  true,
		Mode:      gomdb.ModeObjDep,
		Strategy:  gomdb.Immediate,
		MemoCache: memo,
	})
	if err != nil {
		return nil, nil, "", err
	}
	// Warm the pool (and the memo cache, when enabled) with one pass over
	// every access path the mixes use.
	for _, oid := range g.Cuboids {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(oid)); err != nil {
			return nil, nil, "", err
		}
	}
	if _, err := db.Retrieve(gmr.Name, []gomdb.FieldSpec{
		gomdb.AnySpec(), gomdb.RangeSpec(0, 50), gomdb.AnySpec(),
	}); err != nil {
		return nil, nil, "", err
	}
	if _, err := db.Query(`range c: Cuboid retrieve c.CuboidID where c.volume > 100.0 and c.volume < 120.0`, nil); err != nil {
		return nil, nil, "", err
	}
	return db, g, gmr.Name, nil
}

// runMixOp performs one operation of the named mix.
func runMixOp(db *gomdb.Database, g *fixtures.Geometry, gmrName, mix string, rng *rand.Rand) error {
	op := mix
	if mix == "mixed" {
		switch r := rng.Intn(10); {
		case r < 7:
			op = "forward"
		case r < 9:
			op = "query"
		default:
			op = "retrieve"
		}
	}
	switch op {
	case "forward":
		_, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[rng.Intn(len(g.Cuboids))]))
		return err
	case "retrieve":
		lo := float64(rng.Intn(500))
		_, err := db.Retrieve(gmrName, []gomdb.FieldSpec{
			gomdb.AnySpec(), gomdb.RangeSpec(lo, lo+25), gomdb.AnySpec(),
		})
		return err
	case "query":
		lo := float64(rng.Intn(500))
		params := map[string]gomdb.Value{"lo": gomdb.Float(lo), "hi": gomdb.Float(lo + 25)}
		_, err := db.Query(`range c: Cuboid retrieve c.CuboidID where c.volume > $lo and c.volume < $hi`, params)
		return err
	}
	return fmt.Errorf("bench: unknown mix %q", mix)
}

// mutexWaitSeconds reads the runtime's cumulative mutex wait time; the delta
// across a measurement quantifies lock contention independently of the
// machine's core count (on a single-core CI runner, ops/sec cannot scale,
// but the single-mutex pool still shows its contention here).
func mutexWaitSeconds() float64 {
	samples := []runtimemetrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	runtimemetrics.Read(samples)
	if samples[0].Value.Kind() != runtimemetrics.KindFloat64 {
		return 0
	}
	return samples[0].Value.Float64()
}

// measureThroughput runs one mix at one goroutine count for roughly d of
// wall time and returns the point.
func measureThroughput(db *gomdb.Database, g *fixtures.Geometry, gmrName, mix string, goroutines int, d time.Duration) (ThroughputPoint, error) {
	var stop atomic.Bool
	var ops atomic.Int64
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	waitBefore := mutexWaitSeconds()
	start := time.Now()
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := int64(0)
			for !stop.Load() {
				if err := runMixOp(db, g, gmrName, mix, rng); err != nil {
					errs <- err
					return
				}
				n++
			}
			ops.Add(n)
		}(int64(1000 + i))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return ThroughputPoint{}, err
	}
	waitAfter := mutexWaitSeconds()
	return ThroughputPoint{
		Goroutines:  goroutines,
		Ops:         ops.Load(),
		OpsPerSec:   float64(ops.Load()) / elapsed.Seconds(),
		MutexWaitMs: (waitAfter - waitBefore) * 1000,
	}, nil
}

// Throughput runs the wall-clock suite and returns the report plus a Figure
// (X = goroutines, one series per configuration, Y = forward-mix ops/sec)
// for terminal display.
func Throughput(sc Scale) (*ThroughputReport, *Figure, error) {
	n := 800
	d := 250 * time.Millisecond
	if sc.OpsDivisor > 1 { // -short
		n = 200
		d = 60 * time.Millisecond
	}
	// The striped configurations pin the shard count to 8 rather than the
	// GOMAXPROCS default so the measured lock layout is the same on every
	// host (on a single-core runner the default would collapse to 1 shard
	// and the comparison would be vacuous).
	configs := []struct {
		name   string
		shards int
		memo   bool
	}{
		{"single-mutex", 1, false},
		{"striped", 8, false},
		{"striped+memo", 8, true},
	}
	rep := &ThroughputReport{
		Harness:       "gombench -figure throughput",
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPUWarning: NumCPUWarning(),
		Cuboids:       n,
		BufferPages:   8192,
		DurationMs:    d.Milliseconds(),
		Goroutines:    throughputGoroutines,
		Notes: "Wall-clock ops/sec of the concurrent read path; simulated-clock figures are unaffected. " +
			"Speedup is relative to the same configuration at 1 goroutine; mutex_wait_ms is the runtime's " +
			"cumulative sync.Mutex wait over the measurement window (contention evidence independent of core count). " +
			"Scaling beyond 1x requires as many schedulable CPUs as goroutines.",
	}
	fig := &Figure{
		ID:     "throughput",
		Title:  "Wall-clock forward-lookup throughput vs. goroutines",
		XLabel: "goroutines",
		YLabel: "ops/sec",
	}
	for _, gr := range throughputGoroutines {
		fig.X = append(fig.X, float64(gr))
	}
	for _, cfg := range configs {
		db, g, gmrName, err := throughputDB(n, cfg.shards, cfg.memo)
		if err != nil {
			return nil, nil, fmt.Errorf("throughput %s: %w", cfg.name, err)
		}
		tc := ThroughputConfig{Name: cfg.name, BufferShards: db.Pool.NumShards(), MemoCache: cfg.memo}
		for _, mix := range throughputMixes {
			tm := ThroughputMix{Name: mix}
			for _, gr := range throughputGoroutines {
				pt, err := measureThroughput(db, g, gmrName, mix, gr, d)
				if err != nil {
					return nil, nil, fmt.Errorf("throughput %s/%s x%d: %w", cfg.name, mix, gr, err)
				}
				if len(tm.Points) > 0 && tm.Points[0].OpsPerSec > 0 {
					pt.Speedup = pt.OpsPerSec / tm.Points[0].OpsPerSec
				} else {
					pt.Speedup = 1
				}
				tm.Points = append(tm.Points, pt)
			}
			tc.Mixes = append(tc.Mixes, tm)
		}
		rep.Configs = append(rep.Configs, tc)
		s := Series{Name: cfg.name}
		for _, pt := range tc.Mixes[0].Points {
			s.Points = append(s.Points, pt.OpsPerSec)
		}
		fig.Series = append(fig.Series, s)
	}
	return rep, fig, nil
}

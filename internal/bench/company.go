package bench

import (
	"fmt"
	"math/rand"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/query"
)

// The Company benchmarks of Section 7.2: the materialized ranking function
// (Figures 13 and 14) and the materialized department-project matrix with a
// compensating action (Figure 15).

type companyBench struct {
	db      *gomdb.Database
	c       *fixtures.Company
	version Version
	rng     *rand.Rand
	qbwR    *query.Query
}

// newRankingBench builds the Figure 13/14 database (20 departments x 100
// employees, 1000 projects, 10 jobs per employee) and materializes
// Employee.ranking per version.
func newRankingBench(version Version, sc Scale) (*companyBench, error) {
	cfg := fixtures.Figure13Config()
	if sc.CompanyDivisor > 1 {
		cfg.Departments = max(2, cfg.Departments/sc.CompanyDivisor)
		cfg.EmpsPerDep = max(3, cfg.EmpsPerDep/sc.CompanyDivisor)
		cfg.Projects = max(5, cfg.Projects/sc.CompanyDivisor)
	}
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineCompany(db); err != nil {
		return nil, err
	}
	c, err := fixtures.PopulateCompany(db, cfg)
	if err != nil {
		return nil, err
	}
	b := &companyBench{db: db, c: c, version: version, rng: c.Rng()}
	switch version {
	case WithoutGMR:
	case Immediate:
		_, err = db.Materialize(gomdb.MaterializeOptions{
			Funcs: []string{"Employee.ranking"}, Complete: true,
			Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
		})
	case LazyRemat:
		_, err = db.Materialize(gomdb.MaterializeOptions{
			Funcs: []string{"Employee.ranking"}, Complete: true,
			Strategy: gomdb.Lazy, Mode: gomdb.ModeObjDep,
		})
	default:
		err = fmt.Errorf("bench: unknown ranking version %q", version)
	}
	if err != nil {
		return nil, err
	}
	b.qbwR, err = query.Parse(`range e: Employee retrieve e where e.ranking > $lo and e.ranking < $hi`)
	if err != nil {
		return nil, err
	}
	return b, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// QbwR is the backward query on ranking: retrieve e where
// r-ε < e.ranking < r+ε.
func (b *companyBench) QbwR() error {
	r := b.rng.Float64() * 1000
	const eps = 50
	_, err := b.db.Queries.RunQuery(b.qbwR, map[string]gomdb.Value{
		"lo": gomdb.Float(r - eps),
		"hi": gomdb.Float(r + eps),
	})
	return err
}

// QfwR is the forward query: retrieve e.ranking where e.EmpNo = randomNo
// (the EmpNo index is the in-memory ByEmpNo map).
func (b *companyBench) QfwR() error {
	e := b.c.RandomEmployee()
	_, err := b.db.Call("Employee.ranking", gomdb.Ref(e))
	return err
}

// P promotes or degrades a randomly chosen employee.
func (b *companyBench) P() error { return b.c.Promote() }

// Figure13 reproduces "Cost of Backward Queries": 10 operations, backward
// ranking queries vs. promotions, Pup 0 to 1 step 0.1.
func Figure13(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "Figure 13",
		Title:  "Cost of backward queries (materialized ranking)",
		XLabel: "Pup",
		YLabel: "simulated seconds for 10 ops",
		X:      thin(seq(0, 1, 0.1), sc.Points),
	}
	for _, v := range []Version{WithoutGMR, Immediate, LazyRemat} {
		s := Series{Name: v.String()}
		for _, pup := range fig.X {
			b, err := newRankingBench(v, sc)
			if err != nil {
				return nil, err
			}
			t, err := runMix(b.db, b.rng, []wop{{1.0, b.QbwR}}, []wop{{1.0, b.P}}, pup, sc.ops(10))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure14 reproduces "Cost of Forward Queries": 1000 operations, forward
// ranking queries vs. promotions, Pup 0 to 1 step 0.1.
func Figure14(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "Figure 14",
		Title:  "Cost of forward queries (materialized ranking)",
		XLabel: "Pup",
		YLabel: "simulated seconds for 1000 ops",
		X:      thin(seq(0, 1, 0.1), sc.Points),
	}
	for _, v := range []Version{WithoutGMR, Immediate, LazyRemat} {
		s := Series{Name: v.String()}
		for _, pup := range fig.X {
			b, err := newRankingBench(v, sc)
			if err != nil {
				return nil, err
			}
			t, err := runMix(b.db, b.rng, []wop{{1.0, b.QfwR}}, []wop{{1.0, b.P}}, pup, sc.ops(1000))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// newMatrixBench builds the Figure 15 database (5 departments x 10
// employees, 100 projects, 5 programmers per project) and materializes
// Company.matrix per version. The CompAction version additionally registers
// the comp_add_project compensating action.
func newMatrixBench(version Version, sc Scale) (*companyBench, error) {
	cfg := fixtures.Figure15Config()
	if sc.CompanyDivisor > 1 {
		cfg.Projects = max(10, cfg.Projects/sc.CompanyDivisor)
	}
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineCompany(db); err != nil {
		return nil, err
	}
	c, err := fixtures.PopulateCompany(db, cfg)
	if err != nil {
		return nil, err
	}
	b := &companyBench{db: db, c: c, version: version, rng: c.Rng()}
	strategy := gomdb.Immediate
	switch version {
	case WithoutGMR:
		return b, nil
	case LazyRemat:
		strategy = gomdb.Lazy
	case Immediate, CompAction:
	default:
		return nil, fmt.Errorf("bench: unknown matrix version %q", version)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Company.matrix"}, Complete: true,
		Strategy: strategy, Mode: gomdb.ModeInfoHiding,
	}); err != nil {
		return nil, err
	}
	if version == CompAction {
		comp, err := db.Schema.LookupFunction("Company.comp_add_project")
		if err != nil {
			return nil, err
		}
		if err := db.GMRs.DefineCompensation("Company", "add_project", "Company.matrix", comp); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// QselM selects the matrix lines of a randomly chosen department and
// retrieves their Proj fields.
func (b *companyBench) QselM() error {
	dno := gomdb.Int(b.c.RandomDepNo())
	m, err := b.db.Call("Company.matrix", gomdb.Ref(b.c.Comp))
	if err != nil {
		return err
	}
	lines, err := b.db.Engine.ReadElems(m)
	if err != nil {
		return err
	}
	for _, l := range lines {
		dep, err := b.db.Engine.ReadAttr(l, "Dep")
		if err != nil {
			return err
		}
		depNo, err := b.db.Engine.ReadAttr(dep, "DepNo")
		if err != nil {
			return err
		}
		if depNo.Equal(dno) {
			if _, err := b.db.Engine.ReadAttr(l, "Proj"); err != nil {
				return err
			}
		}
	}
	return nil
}

// N creates a new project and inserts it into the company via the public
// add_project operation.
func (b *companyBench) N() error {
	p, err := b.c.NewProjectWithProgrammers(5)
	if err != nil {
		return err
	}
	_, err = b.db.Call("Company.add_project", gomdb.Ref(b.c.Comp), gomdb.Ref(p))
	return err
}

// Figure15 reproduces "The Benefits of Compensating Actions": 10
// operations, matrix selections vs. project insertions, Pup 0 to 1 step
// 0.1, with four program versions.
func Figure15(sc Scale) (*Figure, error) {
	fig := &Figure{
		ID:     "Figure 15",
		Title:  "Benefits of compensating actions (materialized matrix)",
		XLabel: "Pup",
		YLabel: "simulated seconds for 10 ops",
		X:      thin(seq(0, 1, 0.1), sc.Points),
	}
	for _, v := range []Version{WithoutGMR, Immediate, LazyRemat, CompAction} {
		s := Series{Name: v.String()}
		for _, pup := range fig.X {
			b, err := newMatrixBench(v, sc)
			if err != nil {
				return nil, err
			}
			t, err := runMix(b.db, b.rng, []wop{{1.0, b.QselM}}, []wop{{1.0, b.N}}, pup, sc.ops(10))
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, t)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

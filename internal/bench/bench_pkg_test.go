package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyScale keeps the harness tests fast while still exercising every code
// path (populate, materialize, every operation type, measurement).
func tinyScale() Scale {
	return Scale{Cuboids: 120, OpsDivisor: 10, Points: 20, CompanyDivisor: 10}
}

func TestFigureRunnersProduceSeries(t *testing.T) {
	sc := tinyScale()
	wantSeries := map[string]int{
		"table1":       2,
		"figure7":      3,
		"figure8":      3,
		"figure9":      2,
		"figure10":     4,
		"figure11":     3,
		"figure13":     3,
		"figure14":     3,
		"figure15":     4,
		"ablation":     5,
		"ablation-mds": 2,
	}
	for _, id := range IDs() {
		fig, err := Registry[id](sc)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if want := wantSeries[id]; len(fig.Series) != want {
			t.Errorf("%s: %d series, want %d", id, len(fig.Series), want)
		}
		if len(fig.X) == 0 {
			t.Errorf("%s: no x-axis points", id)
		}
		for _, s := range fig.Series {
			if len(s.Points) != len(fig.X) {
				t.Errorf("%s/%s: %d points for %d x values", id, s.Name, len(s.Points), len(fig.X))
			}
			for i, p := range s.Points {
				if p < 0 || math.IsNaN(p) {
					t.Errorf("%s/%s[%d]: bad value %g", id, s.Name, i, p)
				}
			}
		}
	}
}

func TestTable1ExactValues(t *testing.T) {
	fig, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	wantV := []float64{300, 200, 100}
	wantW := []float64{2358, 1572, 1900}
	for i := range wantV {
		if math.Abs(fig.Series[0].Points[i]-wantV[i]) > 1e-6 {
			t.Errorf("volume[%d] = %g, want %g", i, fig.Series[0].Points[i], wantV[i])
		}
		if math.Abs(fig.Series[1].Points[i]-wantW[i]) > 1e-6 {
			t.Errorf("weight[%d] = %g, want %g", i, fig.Series[1].Points[i], wantW[i])
		}
	}
}

// TestFigure9Shape: the GMR version must win clearly on forward-query-only
// workloads (the paper's factor 4-5; the simulated buffer makes it larger).
func TestFigure9Shape(t *testing.T) {
	fig, err := Figure9(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	last := len(fig.X) - 1
	without := fig.Series[0].Points[last]
	with := fig.Series[1].Points[last]
	if with >= without {
		t.Fatalf("WithGMR (%g) not cheaper than WithoutGMR (%g) for forward queries", with, without)
	}
}

// TestFigure10Shape: immediate maintenance pays a large rotation penalty;
// Lazy and InfoHiding stay near the unsupported version.
func TestFigure10Shape(t *testing.T) {
	fig, err := Figure10(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	last := len(fig.X) - 1
	get := func(name string) float64 {
		for _, s := range fig.Series {
			if s.Name == name {
				return s.Points[last]
			}
		}
		t.Fatalf("series %q missing", name)
		return 0
	}
	without, with := get("WithoutGMR"), get("WithGMR")
	lazy, ih := get("Lazy"), get("InfoHiding")
	if with < 2*without {
		t.Errorf("WithGMR rotation penalty too small: %g vs %g", with, without)
	}
	if lazy > 2*without {
		t.Errorf("Lazy (%g) not close to WithoutGMR (%g)", lazy, without)
	}
	if ih > 1.5*without {
		t.Errorf("InfoHiding (%g) not close to WithoutGMR (%g)", ih, without)
	}
}

// TestAblationOrdering: the Section 5 ladder must be monotone on the fixed
// workload: Basic >= SchemaDep >= ObjDep, and InfoHiding cheapest.
func TestAblationOrdering(t *testing.T) {
	fig, err := Ablation(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	last := len(fig.X) - 1
	v := map[string]float64{}
	for _, s := range fig.Series {
		v[s.Name] = s.Points[last]
	}
	if !(v["Basic"] >= v["SchemaDep"]*0.99) {
		t.Errorf("Basic (%g) cheaper than SchemaDep (%g)", v["Basic"], v["SchemaDep"])
	}
	if !(v["SchemaDep"] >= v["ObjDep"]*0.99) {
		t.Errorf("SchemaDep (%g) cheaper than ObjDep (%g)", v["SchemaDep"], v["ObjDep"])
	}
	if !(v["InfoHiding"] < v["ObjDep"]) {
		t.Errorf("InfoHiding (%g) not cheaper than ObjDep (%g)", v["InfoHiding"], v["ObjDep"])
	}
}

func TestFigurePrintAndCrossover(t *testing.T) {
	fig := &Figure{
		ID: "T", Title: "t", XLabel: "x", YLabel: "y",
		X: []float64{0, 1, 2},
		Series: []Series{
			{Name: "a", Points: []float64{0, 10, 20}},
			{Name: "b", Points: []float64{10, 10, 10}},
		},
	}
	var buf bytes.Buffer
	fig.Print(&buf)
	out := buf.String()
	for _, want := range []string{"T: t", "a", "b", "10.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
	// a crosses above b at x=1.
	x := fig.CrossoverX("a", "b")
	if math.Abs(x-1) > 1e-9 {
		t.Errorf("CrossoverX = %g, want 1", x)
	}
	if !math.IsNaN(fig.CrossoverX("b", "a")) == (fig.CrossoverX("b", "a") > 0) {
		// b never crosses above a after starting above; value may be NaN.
		_ = x
	}
	if !math.IsNaN(fig.CrossoverX("a", "missing")) {
		t.Error("CrossoverX with missing series not NaN")
	}
}

// TestDeterminism: the seeded workloads produce bit-identical simulated
// times across runs — the reproducibility claim of EXPERIMENTS.md.
func TestDeterminism(t *testing.T) {
	sc := tinyScale()
	for _, id := range []string{"figure9", "figure15"} {
		a, err := Registry[id](sc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Registry[id](sc)
		if err != nil {
			t.Fatal(err)
		}
		for si := range a.Series {
			for i := range a.Series[si].Points {
				if a.Series[si].Points[i] != b.Series[si].Points[i] {
					t.Fatalf("%s/%s[%d]: %g vs %g across runs",
						id, a.Series[si].Name, i, a.Series[si].Points[i], b.Series[si].Points[i])
				}
			}
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	sc := Scale{OpsDivisor: 4}
	if sc.ops(40) != 10 || sc.ops(2) != 1 {
		t.Errorf("ops scaling wrong: %d, %d", sc.ops(40), sc.ops(2))
	}
	xs := seq(0, 1, 0.25)
	if len(xs) != 5 || xs[4] != 1 {
		t.Errorf("seq = %v", xs)
	}
	th := thin(xs, 2)
	if len(th) != 3 || th[0] != 0 || th[len(th)-1] != 1 {
		t.Errorf("thin = %v (must keep first and last)", th)
	}
	if got := thin(xs, 1); len(got) != 5 {
		t.Errorf("thin k=1 changed input: %v", got)
	}
}

// TestWriterInterferenceSeparation pins the MVCC acceptance criterion: with
// a writer continuously holding the engine, snapshot readers must sustain a
// strictly higher rate than the blocking RWMutex baseline at every measured
// concurrency >= 2 (on the blocking path the write-preferring RWMutex queues
// every reader behind the writer; the separation is well over an order of
// magnitude, so a wall-clock comparison is safe even on a loaded runner).
// Not safe under the race detector, though: its instrumentation serializes
// the snapshot read path enough to invert the relationship, so the
// throughput assertion is a plain-build test.
func TestWriterInterferenceSeparation(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock separation is not meaningful under the race detector")
	}
	rep, fig, err := WriterInterference(ShortScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(rep.Configs) != 2 {
		t.Fatalf("expected 2 configs, got %d series / %d configs", len(fig.Series), len(rep.Configs))
	}
	snap, rw := rep.Configs[0], rep.Configs[1]
	if snap.Name != "snapshot" || rw.Name != "rwmutex" {
		t.Fatalf("unexpected config order: %s, %s", snap.Name, rw.Name)
	}
	for i, gr := range rep.Goroutines {
		sp, rp := snap.Points[i], rw.Points[i]
		if sp.ReaderOps == 0 {
			t.Errorf("x%d: snapshot readers made no progress", gr)
		}
		if gr >= 2 && sp.ReaderOpsPerSec <= rp.ReaderOpsPerSec {
			t.Errorf("x%d: snapshot readers (%.0f ops/s) not above rwmutex baseline (%.0f ops/s)",
				gr, sp.ReaderOpsPerSec, rp.ReaderOpsPerSec)
		}
		if sp.WriterOps == 0 {
			t.Errorf("x%d: writer starved on the snapshot engine", gr)
		}
	}
}

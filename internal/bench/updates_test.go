package bench

import "testing"

// TestUpdatesBurstProperties runs the burst-update suite at short scale and
// pins its headline properties: deferred coalescing beats immediate by >= 2x
// simulated cost once bursts reach 4 updates per object, the deferred worker
// sweep is charge-identical, and the queue actually coalesced work.
func TestUpdatesBurstProperties(t *testing.T) {
	rep, fig, err := Updates(ShortScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("%d series, want 3", len(fig.Series))
	}
	byName := map[string][]UpdatesPoint{}
	for _, s := range rep.Strategies {
		byName[s.Name] = s.Points
	}
	for i, pt := range byName["Deferred"] {
		if pt.PerObject < 4 {
			continue
		}
		imm := byName["Immediate"][i].SimSeconds
		if imm < 2*pt.SimSeconds {
			t.Errorf("perObj=%d: immediate %.2fs is not >= 2x deferred %.2fs",
				pt.PerObject, imm, pt.SimSeconds)
		}
	}
	if !rep.ChargesIdentical {
		t.Errorf("deferred worker sweep charges differ: %+v", rep.WorkerSweep)
	}
	if rep.CoalescedUpdates == 0 || rep.Flushes == 0 || rep.QueueHighWater == 0 {
		t.Errorf("queue statistics not exercised: %+v", rep)
	}
}

package ocb

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"gomdb"
	"gomdb/internal/shard"
)

// testParams is small enough that the incomplete Ocache (MaxEntries 16) never
// evicts, so result sets are comparable across shard counts.
var testParams = Params{Classes: 4, FanOut: 2, Depth: 2, NumAttrs: 3,
	Instances: 12, HotFraction: 0.25, Skew: 0.8}

const testSeed = 41

// driverAPI is the read/write surface shared by *gomdb.Database and
// *shard.DB; materialization differs in signature and is passed separately.
type driverAPI interface {
	Set(oid gomdb.OID, attr string, v gomdb.Value) error
	Call(fn string, args ...gomdb.Value) (gomdb.Value, error)
	Backward(fid string, lb, ub float64) ([]gomdb.Match, error)
	Sum(fid string, oids []gomdb.OID) (float64, error)
	Retrieve(gmrName string, specs []gomdb.FieldSpec) ([]gomdb.Row, error)
	Dematerialize(name string) error
	Flush() error
}

// drive applies a generated stream against any backend and renders one
// canonical result line per op — the byte-identity surface for parity tests.
// Applying consumes no randomness (every op is fully resolved); ops the
// plain/sharded surfaces don't share (snap-read, gc, audit) record a skip.
func drive(p Params, api driverAPI, mat func(GMRSpec) error, w *World, ops []Op) []string {
	cat := Catalog(p)
	errStr := func(err error) string {
		if err == nil {
			return "ok"
		}
		return "ERR " + err.Error()
	}
	var out []string
	for i, op := range ops {
		var detail string
		switch op.Kind {
		case "mat":
			spec := cat[op.X%len(cat)]
			detail = spec.Name + " " + errStr(mat(spec))
		case "demat":
			spec := cat[op.X%len(cat)]
			detail = spec.Name + " " + errStr(api.Dematerialize(spec.Name))
		case "forward":
			oid := w.Classes[0][op.X%len(w.Classes[0])]
			v, err := api.Call(op.S, gomdb.Ref(oid))
			if err != nil {
				detail = op.S + " ERR " + err.Error()
			} else {
				detail = fmt.Sprintf("%s(%d) = %s", op.S, op.X, v)
			}
		case "set-value":
			detail = applySet(p, api, w, op, errStr)
		case "batch":
			parts := make([]string, len(op.Sub))
			for j, sub := range op.Sub {
				parts[j] = applySet(p, api, w, sub, errStr)
			}
			detail = "{" + strings.Join(parts, "; ") + "}"
		case "backward":
			ms, err := api.Backward(op.S, op.F[0], op.F[1])
			if err != nil {
				detail = op.S + " ERR " + err.Error()
			} else {
				detail = fmt.Sprintf("%s[%g,%g] %d matches", op.S, op.F[0], op.F[1], len(ms))
			}
		case "sum":
			k := 1 + op.N%len(w.Classes[0])
			s, err := api.Sum(op.S, w.Classes[0][:k])
			if err != nil {
				detail = op.S + " ERR " + err.Error()
			} else {
				detail = fmt.Sprintf("%s over %d = %g", op.S, k, s)
			}
		case "retrieve":
			spec := cat[op.X%len(cat)]
			rows, err := api.Retrieve(spec.Name, []gomdb.FieldSpec{
				gomdb.AnySpec(), gomdb.RangeSpec(op.F[0], op.F[1])})
			if err != nil {
				detail = spec.Name + " ERR " + err.Error()
			} else {
				detail = fmt.Sprintf("%s[%g,%g] %d rows", spec.Name, op.F[0], op.F[1], len(rows))
			}
		case "flush":
			detail = errStr(api.Flush())
		default:
			detail = "skip"
		}
		out = append(out, fmt.Sprintf("%04d %-10s %s", i, op.Kind, detail))
	}
	return out
}

func applySet(p Params, api driverAPI, w *World, op Op, errStr func(error) string) string {
	cls := w.Classes[op.N%p.Classes]
	oid := cls[op.X%len(cls)]
	err := api.Set(oid, op.S, gomdb.Float(op.F[0]))
	return fmt.Sprintf("C%d[%d].%s=%g %s", op.N%p.Classes, op.X%len(cls), op.S, op.F[0], errStr(err))
}

func plainMat(db *gomdb.Database) func(GMRSpec) error {
	return func(spec GMRSpec) error {
		_, err := db.Materialize(gomdb.MaterializeOptions{
			Name: spec.Name, Funcs: spec.Funcs, Strategy: gomdb.Lazy,
			Complete: spec.Complete, MaxEntries: spec.MaxEntries,
		})
		return err
	}
}

func shardMat(db *shard.DB) func(GMRSpec) error {
	return func(spec GMRSpec) error {
		return db.Materialize(gomdb.MaterializeOptions{
			Name: spec.Name, Funcs: spec.Funcs, Strategy: gomdb.Lazy,
			Complete: spec.Complete, MaxEntries: spec.MaxEntries,
		})
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Classes: 0, FanOut: 1, Depth: 1, NumAttrs: 1, Instances: 1},
		{Classes: 1, FanOut: 1, Depth: 1, NumAttrs: 1, Instances: 0},
		{Classes: 1, FanOut: 1, Depth: 1, NumAttrs: 0, Instances: 1},
		{Classes: 1, FanOut: -1, Depth: 1, NumAttrs: 1, Instances: 1},
		{Classes: 1, FanOut: 1, Depth: -1, NumAttrs: 1, Instances: 1},
		{Classes: 1, FanOut: 1, Depth: 1, NumAttrs: 1, Instances: 1, HotFraction: -0.1},
		{Classes: 1, FanOut: 1, Depth: 1, NumAttrs: 1, Instances: 1, HotFraction: 1.5},
		{Classes: 1, FanOut: 1, Depth: 1, NumAttrs: 1, Instances: 1, Skew: -0.2},
		{Classes: 1, FanOut: 1, Depth: 1, NumAttrs: 1, Instances: 1, Skew: 2},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadParams) {
			t.Errorf("bad[%d] %+v: got %v, want ErrBadParams", i, p, err)
		}
		if _, err := Gen(p, 1); !errors.Is(err, ErrBadParams) {
			t.Errorf("Gen(bad[%d]): got %v, want ErrBadParams", i, err)
		}
	}
	for _, p := range []Params{Baseline(), Demo(), testParams,
		{Classes: 1, FanOut: 0, Depth: 0, NumAttrs: 1, Instances: 1}} {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v: unexpected %v", p, err)
		}
	}
}

// TestGenDeterminism pins the generation-time half of the contract: the same
// Params+seed expands to byte-identical schema, population trace, and op
// stream, and a different seed to a different base (the generator is not
// accidentally constant).
func TestGenDeterminism(t *testing.T) {
	b1, err := Gen(testParams, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := Gen(testParams, testSeed)
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("Gen is not deterministic for identical Params+seed")
	}
	if b1.PopTrace() != b2.PopTrace() {
		t.Fatal("PopTrace differs for identical bases")
	}
	if SchemaTrace(testParams) != SchemaTrace(testParams) {
		t.Fatal("SchemaTrace is not deterministic")
	}
	s1 := GenStream(testParams, testSeed, StreamOptions{Ops: 120})
	s2 := GenStream(testParams, testSeed, StreamOptions{Ops: 120})
	if StreamTrace(s1) != StreamTrace(s2) {
		t.Fatal("GenStream is not deterministic for identical Params+seed")
	}
	other, _ := Gen(testParams, testSeed+1)
	if b1.PopTrace() == other.PopTrace() {
		t.Fatal("different seeds produced identical bases")
	}
	// The stream must be non-vacuous: every weighted op class shows up.
	kinds := map[string]bool{}
	for _, op := range s1 {
		kinds[op.Kind] = true
	}
	for _, k := range []string{"forward", "set-value", "batch", "backward", "sum", "retrieve", "mat", "flush", "audit"} {
		if !kinds[k] {
			t.Errorf("120-op stream never generated kind %q", k)
		}
	}
}

// TestGenAcrossGOMAXPROCS re-derives schema, base, stream, population OIDs,
// and a driven result trace at GOMAXPROCS 1 and 4: identical bytes each time.
// Nothing in generation or apply may depend on scheduling.
func TestGenAcrossGOMAXPROCS(t *testing.T) {
	type snap struct {
		schema, pop, stream string
		oids                string
		results             []string
	}
	run := func() snap {
		base, err := Gen(testParams, testSeed)
		if err != nil {
			t.Fatal(err)
		}
		stream := GenStream(testParams, testSeed, StreamOptions{Ops: 100})
		db := gomdb.Open(gomdb.Config{BufferPages: 64})
		if err := Define(db, testParams); err != nil {
			t.Fatal(err)
		}
		w, err := Populate(db, base)
		if err != nil {
			t.Fatal(err)
		}
		return snap{
			schema:  SchemaTrace(testParams),
			pop:     base.PopTrace(),
			stream:  StreamTrace(stream),
			oids:    fmt.Sprint(w.Classes),
			results: drive(testParams, db, plainMat(db), w, stream),
		}
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	runtime.GOMAXPROCS(1)
	s1 := run()
	runtime.GOMAXPROCS(4)
	s4 := run()
	if s1.schema != s4.schema || s1.pop != s4.pop || s1.stream != s4.stream {
		t.Fatal("generation differs across GOMAXPROCS")
	}
	if s1.oids != s4.oids {
		t.Fatalf("population OIDs differ across GOMAXPROCS:\n1: %s\n4: %s", s1.oids, s4.oids)
	}
	if !reflect.DeepEqual(s1.results, s4.results) {
		t.Fatalf("result traces differ across GOMAXPROCS:\n%s", firstDiff(s1.results, s4.results))
	}
}

// TestShardCountParity populates the same Base through the router at shard
// counts 1 and 4 and against a plain engine: the shared OID allocator must
// hand out identical OIDs everywhere (charges stay shard-count-independent
// because object identity does), and driving the same stream through the
// router must produce byte-identical result traces at both shard counts.
// Simulated Clock parity across shard counts is deliberately NOT asserted:
// replicated deep-class writes broadcast to every replica, so write charges
// scale with shard count by design.
func TestShardCountParity(t *testing.T) {
	base, err := Gen(testParams, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	stream := GenStream(testParams, testSeed, StreamOptions{Ops: 100})

	plainDB := gomdb.Open(gomdb.Config{BufferPages: 64})
	if err := Define(plainDB, testParams); err != nil {
		t.Fatal(err)
	}
	plainW, err := Populate(plainDB, base)
	if err != nil {
		t.Fatal(err)
	}

	type routed struct {
		w       *World
		results []string
	}
	runShard := func(n int) routed {
		db := shard.Open(shard.Config{Shards: n, Engine: gomdb.Config{BufferPages: 64}})
		if err := DefineSharded(db, testParams); err != nil {
			t.Fatal(err)
		}
		w, err := PopulateSharded(db, base)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		return routed{w: w, results: drive(testParams, db, shardMat(db), w, stream)}
	}
	r1 := runShard(1)
	r4 := runShard(4)

	for _, r := range []routed{r1, r4} {
		if !reflect.DeepEqual(plainW.Classes, r.w.Classes) {
			t.Fatalf("sharded population OIDs differ from plain:\nplain: %v\nshard: %v",
				plainW.Classes, r.w.Classes)
		}
	}
	if !reflect.DeepEqual(r1.results, r4.results) {
		t.Fatalf("result traces differ across shard counts {1,4}:\n%s", firstDiff(r1.results, r4.results))
	}

	// Forward lookups are point reads on both surfaces; the plain engine must
	// agree with the router value-for-value.
	plainRes := drive(testParams, plainDB, plainMat(plainDB), plainW, stream)
	for i := range plainRes {
		if strings.Contains(plainRes[i], "forward") && plainRes[i] != r4.results[i] {
			t.Fatalf("forward result diverges plain vs shard4 at op %d:\nplain: %s\nshard: %s",
				i, plainRes[i], r4.results[i])
		}
	}
}

// TestDegenerateParams drives every degenerate corner end to end: generate,
// define, populate, materialize the whole catalog, run a stream, and check
// consistency. Valid bases or typed errors — never a panic.
func TestDegenerateParams(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"depth0", Params{Classes: 4, FanOut: 2, Depth: 0, NumAttrs: 3, Instances: 10, HotFraction: 0.3, Skew: 0.7}},
		{"fanout0", Params{Classes: 3, FanOut: 0, Depth: 3, NumAttrs: 3, Instances: 10, HotFraction: 0.3, Skew: 0.7}},
		{"hot1.0", Params{Classes: 3, FanOut: 2, Depth: 2, NumAttrs: 2, Instances: 10, HotFraction: 1.0, Skew: 0.9}},
		{"singleclass", Params{Classes: 1, FanOut: 3, Depth: 2, NumAttrs: 4, Instances: 14, HotFraction: 0.2, Skew: 0.8}},
		{"multipage", Params{Classes: 2, FanOut: 1, Depth: 1, NumAttrs: 6, Instances: 500, HotFraction: 0.1, Skew: 0.9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic: %v", r)
				}
			}()
			base, err := Gen(tc.p, testSeed)
			if err != nil {
				t.Fatal(err)
			}
			db := gomdb.Open(gomdb.Config{BufferPages: 48})
			if err := Define(db, tc.p); err != nil {
				t.Fatal(err)
			}
			w, err := Populate(db, base)
			if err != nil {
				t.Fatal(err)
			}
			if tc.name == "multipage" && db.Objects.HeapPages() <= 1 {
				t.Fatalf("multipage params fit one heap page (%d)", db.Objects.HeapPages())
			}
			cat := Catalog(tc.p)
			mat := plainMat(db)
			for _, spec := range cat {
				if err := mat(spec); err != nil {
					t.Fatalf("materialize %s: %v", spec.Name, err)
				}
			}
			ops := GenStream(tc.p, testSeed, StreamOptions{Ops: 40, W: Weights{
				Forward: 30, Update: 20, Batch: 5, Backward: 5, Sum: 5, Retrieve: 5, Flush: 10}})
			drive(tc.p, db, mat, w, ops)
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			for _, spec := range cat {
				rep, err := db.CheckConsistency(spec.Name, 1e-9, spec.Complete)
				if err != nil {
					t.Fatalf("consistency %s: %v", spec.Name, err)
				}
				if rep.Err() != nil {
					t.Fatalf("consistency %s: %v", spec.Name, rep.Err())
				}
			}
		})
	}
}

// TestHotSkew sanity-checks the access distribution: with a strong skew the
// hot set must absorb most picks, and with HotFraction 1.0 every index must
// still be reachable-in-principle without panicking.
func TestHotSkew(t *testing.T) {
	p := Params{Classes: 1, FanOut: 0, Depth: 0, NumAttrs: 1, Instances: 100,
		HotFraction: 0.1, Skew: 0.9}
	ops := GenStream(p, 7, StreamOptions{Ops: 400, AuditEvery: -1,
		W: Weights{Forward: 1}})
	hot, total := 0, 0
	for _, op := range ops {
		if op.Kind != "forward" {
			continue
		}
		total++
		if op.X < 10 {
			hot++
		}
	}
	if total == 0 {
		t.Fatal("no forward ops generated")
	}
	if frac := float64(hot) / float64(total); frac < 0.7 {
		t.Fatalf("hot set absorbed only %.0f%% of accesses (want >= 70%%)", frac*100)
	}
}

func firstDiff(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}

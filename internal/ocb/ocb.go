// Package ocb is an OCB-style synthetic workload generator (after Darmont &
// Schneider's "Object Clustering Benchmark" / "Object Database Benchmarks"):
// a Params struct — class count, reference fan-out, derived-function depth,
// numeric attribute mix, instance count, hot-set fraction, Zipf-like access
// skew — expands seed-deterministically into
//
//	(a) a gomdb schema whose derived functions span support-set sizes from a
//	    single attribute read up to FanOut^Depth transitive loads,
//	(b) a populated object base (plain or sharded through the router's shared
//	    OID allocator, so OIDs and charges are shard-count-independent), and
//	(c) a reproducible op stream over that base with per-op-class weights.
//
// The determinism contract matches sim.Generate: ALL randomness is consumed
// at generation time (Gen and GenStream), producing pure values — a Base of
// pre-drawn attribute values and reference indices, and ops whose targets are
// resolved indices. Applying either consumes no randomness, so the same
// Params+seed yields byte-identical schemas, population traces, and op
// streams regardless of GOMAXPROCS, shard count, or how often they are
// replayed.
//
// The class graph is a layered DAG: instances of class C<i> hold FanOut
// references into class C<i+1>, and the deepest class holds none. Layering
// (rather than OCB's general random graph) keeps the base cycle-free — every
// derived function terminates — and maps directly onto the shard router's
// placement rule: class 0 partitions across shards, deeper classes replicate,
// and references only ever point from shallower to deeper, so no edge crosses
// shards.
package ocb

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"gomdb"
	"gomdb/internal/lang"
	"gomdb/internal/shard"
)

// Params parameterizes one synthetic object base. The zero value is invalid;
// start from Baseline or Demo and override.
type Params struct {
	// Classes is the number of classes in the layered reference DAG (OCB NC).
	Classes int `json:"classes"`
	// FanOut is the reference count per instance into the next class
	// (OCB MAXNREF). 0 yields a flat base with no derived chains.
	FanOut int `json:"fanout"`
	// Depth bounds the derived-function recursion depth: class 0 defines
	// tot1..tot<min(Depth, Classes-1)>, where tot<d>'s support set spans
	// FanOut^d transitively referenced instances.
	Depth int `json:"depth"`
	// NumAttrs is the numeric (float) attribute count per class.
	NumAttrs int `json:"numattrs"`
	// Instances is the instance count per class (total objects =
	// Classes*Instances; OCB NO is the total).
	Instances int `json:"instances"`
	// HotFraction is the fraction of each extension forming the hot set.
	HotFraction float64 `json:"hot_fraction"`
	// Skew is the probability an access targets the hot set; within the hot
	// set ranks are drawn Zipf-like (weight 1/(rank+1)). 0 is uniform.
	Skew float64 `json:"skew"`
}

// Baseline returns OCB's published baseline: NC=50 classes, MAXNREF=10
// references, NO=20,000 instances (400 per class), 10 numeric attributes,
// with the conventional 20% hot set taking 80% of accesses. Derived-function
// depth 4 keeps the deepest support set at 10^4 — the paper's "expensive
// function" regime. Full-baseline materialization of the deep GMR is
// intentionally costly; tests and figures use scaled-down Params.
func Baseline() Params {
	return Params{Classes: 50, FanOut: 10, Depth: 4, NumAttrs: 10,
		Instances: 400, HotFraction: 0.2, Skew: 0.8}
}

// Demo returns a small base suitable for serving, conformance runs, and sim
// plans: 4 classes x 12 instances, fan-out 2, depth 2.
func Demo() Params {
	return Params{Classes: 4, FanOut: 2, Depth: 2, NumAttrs: 3,
		Instances: 12, HotFraction: 0.25, Skew: 0.8}
}

// ErrBadParams is wrapped by every Validate failure, so callers can
// errors.Is-gate on invalid parameter sets.
var ErrBadParams = errors.New("ocb: invalid params")

// Validate reports the first invalid field. Degenerate-but-meaningful corners
// (Depth 0, FanOut 0, HotFraction 1.0, a single class) are valid.
func (p Params) Validate() error {
	switch {
	case p.Classes < 1:
		return fmt.Errorf("%w: Classes %d < 1", ErrBadParams, p.Classes)
	case p.Instances < 1:
		return fmt.Errorf("%w: Instances %d < 1", ErrBadParams, p.Instances)
	case p.NumAttrs < 1:
		return fmt.Errorf("%w: NumAttrs %d < 1", ErrBadParams, p.NumAttrs)
	case p.FanOut < 0:
		return fmt.Errorf("%w: FanOut %d < 0", ErrBadParams, p.FanOut)
	case p.Depth < 0:
		return fmt.Errorf("%w: Depth %d < 0", ErrBadParams, p.Depth)
	case p.HotFraction < 0 || p.HotFraction > 1:
		return fmt.Errorf("%w: HotFraction %g outside [0,1]", ErrBadParams, p.HotFraction)
	case p.Skew < 0 || p.Skew > 1:
		return fmt.Errorf("%w: Skew %g outside [0,1]", ErrBadParams, p.Skew)
	}
	return nil
}

// ClassName names class c ("C0" is the shallow, partitioned class).
func ClassName(c int) string { return fmt.Sprintf("C%d", c) }

// maxDepth is the deepest tot<d> function class 0 defines: recursion is
// bounded by Depth and by the layers below class 0, and vanishes entirely
// without references.
func (p Params) maxDepth() int {
	if p.FanOut <= 0 || p.Classes <= 1 {
		return 0
	}
	d := p.Classes - 1
	if p.Depth < d {
		d = p.Depth
	}
	return d
}

// classDepth is the deepest tot<d> class c defines.
func (p Params) classDepth(c int) int {
	if p.FanOut <= 0 {
		return 0
	}
	d := p.Classes - 1 - c
	if p.Depth < d {
		d = p.Depth
	}
	return d
}

// hasRefs reports whether class c carries reference attributes.
func (p Params) hasRefs(c int) bool { return p.FanOut > 0 && c < p.Classes-1 }

// SchemaTrace renders the schema Define(p) builds as one canonical line per
// class — the byte-identity surface the determinism tests pin. The schema is
// a pure function of Params (the seed only drives values and edges), which is
// what lets a durable store's DefineSchema closure re-derive it on recovery.
func SchemaTrace(p Params) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ocb schema classes=%d fanout=%d depth=%d numattrs=%d\n",
		p.Classes, p.FanOut, p.Depth, p.NumAttrs)
	for c := p.Classes - 1; c >= 0; c-- {
		fmt.Fprintf(&sb, "%s attrs=[Id", ClassName(c))
		for a := 0; a < p.NumAttrs; a++ {
			fmt.Fprintf(&sb, " N%d", a)
		}
		if p.hasRefs(c) {
			for j := 0; j < p.FanOut; j++ {
				fmt.Fprintf(&sb, " R%d:%s", j, ClassName(c+1))
			}
		}
		fmt.Fprintf(&sb, "] ops=[n0 tot0")
		for d := 1; d <= p.classDepth(c); d++ {
			fmt.Fprintf(&sb, " tot%d", d)
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// Define builds the schema for p on db: per class, an Id, NumAttrs float
// attributes, FanOut references to the next class, and the derived functions
// n0 (one attribute read), tot0 (local numeric sum), and tot<d> (local sum
// plus tot<d-1> over every reference — support set ~FanOut^d). Classes are
// defined deepest-first so referenced types exist before referencing types.
func Define(db *gomdb.Database, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for c := p.Classes - 1; c >= 0; c-- {
		attrs := make([]gomdb.AttrDef, 0, 1+p.NumAttrs+p.FanOut)
		attrs = append(attrs, gomdb.PubAttr("Id", "int"))
		for a := 0; a < p.NumAttrs; a++ {
			attrs = append(attrs, gomdb.PubAttr(fmt.Sprintf("N%d", a), "float"))
		}
		if p.hasRefs(c) {
			for j := 0; j < p.FanOut; j++ {
				attrs = append(attrs, gomdb.PubAttr(fmt.Sprintf("R%d", j), ClassName(c+1)))
			}
		}
		ops := []string{"n0", "tot0"}
		for d := 1; d <= p.classDepth(c); d++ {
			ops = append(ops, fmt.Sprintf("tot%d", d))
		}
		if err := db.DefineType(gomdb.NewTupleType(ClassName(c), attrs...), ops...); err != nil {
			return err
		}
		if err := defineOps(db, p, c); err != nil {
			return err
		}
	}
	return nil
}

// DefineSharded defines the schema on every shard of the router (schema
// metadata replicates; only instances partition).
func DefineSharded(db *shard.DB, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return db.EachShard(func(_ int, sh *gomdb.Database) error {
		return Define(sh, p)
	})
}

func defineOps(db *gomdb.Database, p Params, c int) error {
	self := lang.Self()
	name := ClassName(c)

	n0 := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", name)},
		ResultType:     "float",
		SideEffectFree: true,
		Body:           []lang.Stmt{lang.Ret(lang.A(self, "N0"))},
	}
	if err := db.DefineOp(name, "n0", n0); err != nil {
		return err
	}

	localSum := func() lang.Expr {
		e := lang.A(self, "N0")
		for a := 1; a < p.NumAttrs; a++ {
			e = lang.Add(e, lang.A(self, fmt.Sprintf("N%d", a)))
		}
		return e
	}
	tot0 := &lang.Function{
		Params:         []lang.Param{lang.Prm("self", name)},
		ResultType:     "float",
		SideEffectFree: true,
		Body:           []lang.Stmt{lang.Ret(localSum())},
	}
	if err := db.DefineOp(name, "tot0", tot0); err != nil {
		return err
	}

	for d := 1; d <= p.classDepth(c); d++ {
		e := localSum()
		callee := fmt.Sprintf("%s.tot%d", ClassName(c+1), d-1)
		for j := 0; j < p.FanOut; j++ {
			e = lang.Add(e, lang.CallFn(callee, lang.A(self, fmt.Sprintf("R%d", j))))
		}
		totd := &lang.Function{
			Params:         []lang.Param{lang.Prm("self", name)},
			ResultType:     "float",
			SideEffectFree: true,
			Body:           []lang.Stmt{lang.Ret(e)},
		}
		if err := db.DefineOp(name, fmt.Sprintf("tot%d", d), totd); err != nil {
			return err
		}
	}
	return nil
}

// Inst is one pre-drawn instance: numeric attribute values and, for
// non-deepest classes, indices into the next class's extension.
type Inst struct {
	Nums []float64 `json:"nums"`
	Refs []int     `json:"refs,omitempty"`
}

// Base is a fully expanded object base — a pure value. Insts[c][i] is
// instance i of class c; Populate walks it without consuming randomness.
type Base struct {
	P     Params   `json:"params"`
	Seed  int64    `json:"seed"`
	Insts [][]Inst `json:"insts"`
}

// Gen expands p into a Base, consuming all population randomness from seed.
func Gen(p Params, seed int64) (*Base, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := &Base{P: p, Seed: seed, Insts: make([][]Inst, p.Classes)}
	// Draw in creation order (deepest class first) so the trace reads in the
	// order objects come into being.
	for c := p.Classes - 1; c >= 0; c-- {
		insts := make([]Inst, p.Instances)
		for i := range insts {
			nums := make([]float64, p.NumAttrs)
			for a := range nums {
				nums[a] = math.Round(rng.Float64()*10000) / 100 // 2 decimals: stable %g rendering
			}
			insts[i].Nums = nums
			if p.hasRefs(c) {
				refs := make([]int, p.FanOut)
				for j := range refs {
					refs[j] = rng.Intn(p.Instances)
				}
				insts[i].Refs = refs
			}
		}
		b.Insts[c] = insts
	}
	return b, nil
}

// id is the 1-based creation-order id of instance i of class c (deepest class
// created first). It doubles as the sharding key for class 0.
func (b *Base) id(c, i int) int64 {
	return int64((b.P.Classes-1-c)*b.P.Instances + i + 1)
}

// PopTrace renders the population byte-identically: one line per instance in
// creation order. Two bases are the same object base iff their traces match.
func (b *Base) PopTrace() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ocb base seed=%d classes=%d instances=%d\n", b.Seed, b.P.Classes, b.P.Instances)
	for c := b.P.Classes - 1; c >= 0; c-- {
		for i, inst := range b.Insts[c] {
			fmt.Fprintf(&sb, "%s[%d] id=%d n=%v", ClassName(c), i, b.id(c, i), inst.Nums)
			if len(inst.Refs) > 0 {
				fmt.Fprintf(&sb, " r=%v", inst.Refs)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// World maps the Base back to live OIDs: Classes[c][i] is the OID of
// Insts[c][i]. Streams contain no creates or deletes, so it is stable for the
// life of a run (crash recovery re-reads it from the extensions).
type World struct {
	Classes [][]gomdb.OID
}

// Populate creates every instance of b on a plain database, deepest class
// first so references resolve to already-created objects.
func Populate(db *gomdb.Database, b *Base) (*World, error) {
	w := &World{Classes: make([][]gomdb.OID, b.P.Classes)}
	for c := b.P.Classes - 1; c >= 0; c-- {
		oids := make([]gomdb.OID, 0, len(b.Insts[c]))
		for i := range b.Insts[c] {
			oid, err := db.New(ClassName(c), b.attrs(w, c, i)...)
			if err != nil {
				return nil, fmt.Errorf("ocb: populate %s[%d]: %w", ClassName(c), i, err)
			}
			oids = append(oids, oid)
		}
		w.Classes[c] = oids
	}
	return w, nil
}

// PopulateSharded creates b through the shard router in the exact creation
// order Populate uses, so the shared OID allocator hands out identical OIDs
// at every shard count. Deep classes (1..Classes-1) replicate — they are
// reference data every class-0 chain may traverse, and one replicated create
// consumes exactly one OID — while class 0 partitions by creation id.
func PopulateSharded(db *shard.DB, b *Base) (*World, error) {
	w := &World{Classes: make([][]gomdb.OID, b.P.Classes)}
	for c := b.P.Classes - 1; c >= 0; c-- {
		oids := make([]gomdb.OID, 0, len(b.Insts[c]))
		for i := range b.Insts[c] {
			var oid gomdb.OID
			var err error
			if c > 0 {
				oid, err = db.NewReplicated(ClassName(c), b.attrs(w, c, i)...)
			} else {
				sh := db.ShardFor(uint64(b.id(c, i)))
				oid, err = db.NewOn(sh, ClassName(c), b.attrs(w, c, i)...)
			}
			if err != nil {
				return nil, fmt.Errorf("ocb: populate %s[%d]: %w", ClassName(c), i, err)
			}
			oids = append(oids, oid)
		}
		w.Classes[c] = oids
	}
	return w, nil
}

// attrs renders Insts[c][i] as a creation attribute list in schema order.
func (b *Base) attrs(w *World, c, i int) []gomdb.Value {
	inst := b.Insts[c][i]
	attrs := make([]gomdb.Value, 0, 1+len(inst.Nums)+len(inst.Refs))
	attrs = append(attrs, gomdb.Int(b.id(c, i)))
	for _, n := range inst.Nums {
		attrs = append(attrs, gomdb.Float(n))
	}
	for _, r := range inst.Refs {
		attrs = append(attrs, gomdb.Ref(w.Classes[c+1][r]))
	}
	return attrs
}

// GMRSpec is one entry of the GMR catalog a Params set derives. Every spec is
// a single-function GMR over class 0: the partitioned class under the shard
// router (single partitioned argument, so sharded Materialize accepts it),
// and the only class whose functions span the full depth range.
type GMRSpec struct {
	Name       string
	Funcs      []string
	Complete   bool
	MaxEntries int
}

// Catalog derives the GMR catalog for p: a trivial-support complete GMR
// (On0), mid- and max-depth complete GMRs when the graph is deep enough
// (Omid, Odeep), and a bounded incomplete result cache (Ocache). Each spec
// materializes a distinct function.
func Catalog(p Params) []GMRSpec {
	maxd := p.maxDepth()
	specs := []GMRSpec{{Name: "On0", Funcs: []string{"C0.n0"}, Complete: true}}
	if maxd >= 2 {
		specs = append(specs, GMRSpec{Name: "Omid",
			Funcs: []string{fmt.Sprintf("C0.tot%d", (maxd+1)/2)}, Complete: true})
	}
	if maxd >= 1 {
		specs = append(specs, GMRSpec{Name: "Odeep",
			Funcs: []string{fmt.Sprintf("C0.tot%d", maxd)}, Complete: true})
	}
	specs = append(specs, GMRSpec{Name: "Ocache", Funcs: []string{"C0.tot0"},
		Complete: false, MaxEntries: 16})
	return specs
}

// ForwardFuncs lists the class-0 functions forward lookups draw from.
func ForwardFuncs(p Params) []string {
	fns := []string{"C0.n0", "C0.tot0"}
	for d := 1; d <= p.maxDepth(); d++ {
		fns = append(fns, fmt.Sprintf("C0.tot%d", d))
	}
	return fns
}

// Op is one fully parameterized stream operation. Kind values equal the sim
// package's OpKind strings so streams convert field-for-field into sim plans;
// X is a resolved instance index (hot/cold skew already applied) or a catalog
// index, N a class or count selector, S a function or attribute name.
type Op struct {
	Kind string    `json:"kind"`
	X    int       `json:"x,omitempty"`
	N    int       `json:"n,omitempty"`
	S    string    `json:"s,omitempty"`
	F    []float64 `json:"f,omitempty"`
	Sub  []Op      `json:"sub,omitempty"`
}

// Weights sets the relative frequency of each op class in a stream; they
// need not sum to anything in particular. The zero value means
// DefaultWeights.
type Weights struct {
	Forward  int // forward lookup of a class-0 function
	Update   int // elementary numeric-attribute update, any class
	Batch    int // 2-5 updates in one Batch
	Backward int // backward range query
	Sum      int // aggregate over a class-0 prefix
	Retrieve int // tabular retrieval against a catalog GMR
	MatDemat int // materialize/dematerialize a catalog entry
	Flush    int // drain the deferred queue
	SnapRead int // MVCC snapshot read + per-snapshot congruence audit
	GC       int // result garbage collection + RRR reorganization
}

func (w Weights) total() int {
	return w.Forward + w.Update + w.Batch + w.Backward + w.Sum + w.Retrieve +
		w.MatDemat + w.Flush + w.SnapRead + w.GC
}

// DefaultWeights is forward-dominant, like the paper's workloads.
func DefaultWeights() Weights {
	return Weights{Forward: 30, Update: 14, Batch: 7, Backward: 8, Sum: 4,
		Retrieve: 6, MatDemat: 7, Flush: 8, SnapRead: 5, GC: 3}
}

// UpdateHeavyWeights is write-dominant with frequent flushes and a thin,
// hot-skewed read stream — the regime where lazy beats deferred on deep
// chains: deferred recomputes every invalidated deep entry at each flush,
// lazy only the few the hot set actually reads.
func UpdateHeavyWeights() Weights {
	return Weights{Forward: 10, Update: 45, Batch: 15, Backward: 0, Sum: 0,
		Retrieve: 0, MatDemat: 0, Flush: 25, SnapRead: 0, GC: 0}
}

// StreamOptions tunes GenStream.
type StreamOptions struct {
	// Ops is the target op count (default 150).
	Ops int
	// W weights the op classes (zero value: DefaultWeights).
	W Weights
	// AuditEvery inserts an audit op every N generated ops (0: default 20;
	// negative: no audits — for re-runnable benchmark streams).
	AuditEvery int
}

// GenStream derives a reproducible op stream for p from seed, consuming all
// randomness here. When MatDemat > 0 the stream opens by materializing the
// trivial and deepest catalog entries (the workload's center of gravity);
// with MatDemat == 0 the stream is mat/demat-free and therefore re-runnable
// against an externally materialized base.
func GenStream(p Params, seed int64, opt StreamOptions) []Op {
	if err := p.Validate(); err != nil {
		return nil
	}
	n := opt.Ops
	if n <= 0 {
		n = 150
	}
	w := opt.W
	if w == (Weights{}) {
		w = DefaultWeights()
	}
	auditEvery := opt.AuditEvery
	if auditEvery == 0 {
		auditEvery = 20
	}
	rng := rand.New(rand.NewSource(seed))
	cat := Catalog(p)
	fwd := ForwardFuncs(p)

	var ops []Op
	if w.MatDemat > 0 {
		ops = append(ops, Op{Kind: "mat", X: 0})
		if deep := len(cat) - 2; deep > 0 { // Odeep, when the graph has depth
			ops = append(ops, Op{Kind: "mat", X: deep})
		}
	}
	sinceAudit := 0
	for len(ops) < n {
		if auditEvery > 0 && sinceAudit >= auditEvery {
			ops = append(ops, Op{Kind: "audit"})
			sinceAudit = 0
			continue
		}
		ops = append(ops, genStreamOp(rng, p, cat, fwd, w))
		sinceAudit++
	}
	return ops
}

func genStreamOp(rng *rand.Rand, p Params, cat []GMRSpec, fwd []string, w Weights) Op {
	r := rng.Intn(w.total())
	pick := func(weight int) bool {
		if r < weight {
			return true
		}
		r -= weight
		return false
	}
	switch {
	case pick(w.Forward):
		return Op{Kind: "forward", X: pickIdx(rng, p), S: fwd[rng.Intn(len(fwd))]}
	case pick(w.Update):
		return genUpdate(rng, p)
	case pick(w.Batch):
		sub := make([]Op, 2+rng.Intn(4))
		for i := range sub {
			sub[i] = genUpdate(rng, p)
		}
		return Op{Kind: "batch", Sub: sub}
	case pick(w.Backward):
		lo := rng.Float64() * 200
		return Op{Kind: "backward", S: fwd[rng.Intn(len(fwd))],
			F: []float64{lo, lo + rng.Float64()*float64(800*(1+p.maxDepth()))}}
	case pick(w.Sum):
		return Op{Kind: "sum", S: fwd[rng.Intn(len(fwd))], N: rng.Intn(1 << 16)}
	case pick(w.Retrieve):
		lo := rng.Float64() * 200
		return Op{Kind: "retrieve", X: rng.Intn(len(cat)),
			F: []float64{lo, lo + rng.Float64()*float64(800*(1+p.maxDepth()))}}
	case pick(w.MatDemat):
		if rng.Intn(2) == 0 {
			return Op{Kind: "demat", X: rng.Intn(len(cat))}
		}
		return Op{Kind: "mat", X: rng.Intn(len(cat))}
	case pick(w.Flush):
		return Op{Kind: "flush"}
	case pick(w.SnapRead):
		return Op{Kind: "snap-read", X: pickIdx(rng, p), S: fwd[rng.Intn(len(fwd))]}
	default:
		return Op{Kind: "gc"}
	}
}

// genUpdate draws one elementary update: a numeric attribute of a hot/cold-
// picked instance of a uniformly chosen class. Updates to deep classes
// exercise transitive invalidation through the RRR — one deep write
// invalidates every class-0 entry whose support set traverses it.
func genUpdate(rng *rand.Rand, p Params) Op {
	return Op{Kind: "set-value", X: pickIdx(rng, p), N: rng.Intn(p.Classes),
		S: fmt.Sprintf("N%d", rng.Intn(p.NumAttrs)),
		F: []float64{math.Round(rng.Float64()*10000) / 100}}
}

// pickIdx resolves one instance index with the configured skew: with
// probability Skew the access lands in the hot set (the first
// ceil(HotFraction*n) instances) at a Zipf-like rank (weight 1/(rank+1),
// drawn by inverse CDF over the harmonic weights); otherwise it is uniform
// over the cold remainder. The index is final — applying an op never
// re-draws, which is what keeps streams byte-identical across consumers.
func pickIdx(rng *rand.Rand, p Params) int {
	n := p.Instances
	if n <= 1 {
		rng.Float64() // keep the draw count independent of n
		return 0
	}
	hot := int(math.Ceil(p.HotFraction * float64(n)))
	if hot < 1 {
		hot = 1
	}
	if rng.Float64() >= p.Skew && hot < n {
		return hot + rng.Intn(n-hot)
	}
	var h float64
	for r := 0; r < hot; r++ {
		h += 1 / float64(r+1)
	}
	u := rng.Float64() * h
	for r := 0; r < hot; r++ {
		u -= 1 / float64(r+1)
		if u <= 0 {
			return r
		}
	}
	return hot - 1
}

// StreamTrace renders an op stream byte-identically, one op per line.
func StreamTrace(ops []Op) string {
	var sb strings.Builder
	for i, op := range ops {
		fmt.Fprintf(&sb, "%04d %s", i, opLine(op))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func opLine(op Op) string {
	s := fmt.Sprintf("%-10s x=%d n=%d s=%q f=%v", op.Kind, op.X, op.N, op.S, op.F)
	if len(op.Sub) > 0 {
		subs := make([]string, len(op.Sub))
		for i, sub := range op.Sub {
			subs[i] = opLine(sub)
		}
		s += " {" + strings.Join(subs, "; ") + "}"
	}
	return s
}

// Command gombench regenerates the tables and figures of the paper's
// evaluation section (Section 7) on the simulated GOM object base.
//
// Usage:
//
//	gombench -figure all            # every experiment at full scale
//	gombench -figure figure10       # one experiment
//	gombench -figure figure7 -short # reduced scale for a quick look
//	gombench -list
//
// Output values are simulated seconds (see DESIGN.md for the cost model);
// the shapes and break-even points are the reproduction target, not the
// absolute numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gomdb/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "experiment id (table1, figure7..figure15, ablation, throughput, updates, mvcc, cluster, shard, serve, ocb) or 'all'")
	short := flag.Bool("short", false, "run at reduced scale")
	list := flag.Bool("list", false, "list experiment ids and exit")
	cuboids := flag.Int("cuboids", 0, "override Cuboid database size (default 8000, paper scale)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	plot := flag.Bool("plot", false, "additionally render an ASCII log-scale plot")
	out := flag.String("out", "", "output path for -figure throughput/updates/mvcc (default BENCH_throughput.json for both throughput and mvcc)")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		fmt.Println("throughput")
		fmt.Println("updates")
		fmt.Println("mvcc")
		fmt.Println("cluster")
		fmt.Println("shard")
		fmt.Println("serve")
		fmt.Println("ocb")
		return
	}
	sc := bench.FullScale()
	if *short {
		sc = bench.ShortScale()
	}
	if *cuboids > 0 {
		sc.Cuboids = *cuboids
	}

	// The throughput and updates suites report wall-clock numbers alongside
	// (or instead of) simulated seconds, so they live outside the Registry:
	// "-figure all" keeps producing exactly the simulated figures it always
	// has.
	switch strings.ToLower(*figure) {
	case "throughput":
		runThroughput(sc, jsonOut(*out, "BENCH_throughput.json"), *csv, *plot)
		return
	case "updates":
		runUpdates(sc, jsonOut(*out, "BENCH_updates.json"), *csv, *plot)
		return
	case "mvcc":
		runMVCC(sc, jsonOut(*out, "BENCH_throughput.json"), *csv, *plot)
		return
	case "cluster":
		runCluster(sc, jsonOut(*out, "BENCH_cluster.json"), *csv, *plot)
		return
	case "shard":
		runShard(sc, jsonOut(*out, "BENCH_shard.json"), *csv, *plot)
		return
	case "serve":
		runServe(sc, jsonOut(*out, "BENCH_serve.json"), *csv, *plot)
		return
	case "ocb":
		runOCB(sc, jsonOut(*out, "BENCH_ocb.json"), *csv, *plot)
		return
	}

	ids := bench.IDs()
	if *figure != "all" {
		id := strings.ToLower(*figure)
		if _, ok := bench.Registry[id]; !ok {
			fmt.Fprintf(os.Stderr, "gombench: unknown experiment %q (use -list)\n", *figure)
			os.Exit(1)
		}
		ids = []string{id}
	}
	for _, id := range ids {
		t0 := time.Now()
		fig, err := bench.Registry[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gombench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fig.PrintCSV(os.Stdout)
		} else {
			fig.Print(os.Stdout)
		}
		if *plot {
			fig.PrintPlot(os.Stdout)
		}
		fmt.Printf("  (%s completed in %v wall time)\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}

// jsonOut resolves the -out flag against a per-figure default.
func jsonOut(out, def string) string {
	if out == "" {
		return def
	}
	return out
}

// writeJSON marshals the report and writes it to out.
func writeJSON(rep any, out, figure string) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: %s: %v\n", figure, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "gombench: %s: %v\n", figure, err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", out)
}

// warnNumCPU mirrors the report's single-core caveat on stderr so a CI log
// carries it even when nobody opens the JSON.
func warnNumCPU() {
	if w := bench.NumCPUWarning(); w != "" {
		fmt.Fprintf(os.Stderr, "gombench: warning: %s\n", w)
	}
}

// runShard runs the horizontal-sharding wall-clock suite and writes the
// JSON report.
func runShard(sc bench.Scale, out string, csv, plot bool) {
	t0 := time.Now()
	warnNumCPU()
	rep, fig, err := bench.Shard(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: shard: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fig.PrintCSV(os.Stdout)
	} else {
		fig.Print(os.Stdout)
	}
	if plot {
		fig.PrintPlot(os.Stdout)
	}
	for _, m := range rep.Mixes {
		last := m.Points[len(m.Points)-1]
		fmt.Printf("  %-10s 1 shard %8.0f ops/s -> %d shards %8.0f ops/s (%.2fx)\n",
			m.Name, m.Points[0].OpsPerSec, last.Shards, last.OpsPerSec, last.Speedup)
	}
	if pts := rep.Updates.Points; len(pts) > 0 {
		last := pts[len(pts)-1]
		fmt.Printf("  %-10s 1 shard %8.0f ops/s -> %d shards %8.0f ops/s (%.2fx)\n",
			rep.Updates.Name, pts[0].OpsPerSec, last.Shards, last.OpsPerSec, last.Speedup)
	}
	writeJSON(rep, out, "shard")
	fmt.Printf("  (shard completed in %v wall time)\n\n", time.Since(t0).Round(time.Millisecond))
}

// runServe runs the network-service wall-clock suite and writes the JSON
// report.
func runServe(sc bench.Scale, out string, csv, plot bool) {
	t0 := time.Now()
	warnNumCPU()
	rep, fig, err := bench.Serve(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: serve: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fig.PrintCSV(os.Stdout)
	} else {
		fig.Print(os.Stdout)
	}
	if plot {
		fig.PrintPlot(os.Stdout)
	}
	for _, m := range rep.Mixes {
		last := m.Points[len(m.Points)-1]
		fmt.Printf("  %-10s 1 client %8.0f ops/s -> %d clients %8.0f ops/s (%.2fx)\n",
			m.Name, m.Points[0].OpsPerSec, last.Clients, last.OpsPerSec, last.Speedup)
	}
	if pts := rep.Updates.Points; len(pts) > 0 {
		last := pts[len(pts)-1]
		fmt.Printf("  %-10s 1 client %8.0f ops/s -> %d clients %8.0f ops/s (%.2fx)\n",
			rep.Updates.Name, pts[0].OpsPerSec, last.Clients, last.OpsPerSec, last.Speedup)
	}
	writeJSON(rep, out, "serve")
	fmt.Printf("  (serve completed in %v wall time)\n\n", time.Since(t0).Round(time.Millisecond))
}

// runUpdates runs the burst-update suite and writes the JSON report.
func runUpdates(sc bench.Scale, out string, csv, plot bool) {
	t0 := time.Now()
	rep, fig, err := bench.Updates(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: updates: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fig.PrintCSV(os.Stdout)
	} else {
		fig.Print(os.Stdout)
	}
	if plot {
		fig.PrintPlot(os.Stdout)
	}
	writeJSON(rep, out, "updates")
	fmt.Printf("  (updates completed in %v wall time)\n\n", time.Since(t0).Round(time.Millisecond))
}

// runCluster runs the trace-driven clustering suite and writes the JSON
// report.
func runCluster(sc bench.Scale, out string, csv, plot bool) {
	t0 := time.Now()
	rep, fig, err := bench.Cluster(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: cluster: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fig.PrintCSV(os.Stdout)
	} else {
		fig.Print(os.Stdout)
	}
	if plot {
		fig.PrintPlot(os.Stdout)
	}
	for _, m := range rep.Mixes {
		fmt.Printf("  %-18s reads %6d -> %6d (%.1f%% reduction), miss rate %.3f -> %.3f, moved %d/%d, identical=%v\n",
			m.Name, m.Scattered.PhysReads, m.Clustered.PhysReads, 100*m.ReadReduction,
			m.Scattered.BufferMissRate, m.Clustered.BufferMissRate,
			m.Recluster.Moved, m.Recluster.Objects, m.ResultsIdentical)
	}
	writeJSON(rep, out, "cluster")
	fmt.Printf("  (cluster completed in %v wall time)\n\n", time.Since(t0).Round(time.Millisecond))
}

// runOCB runs the synthetic-workload grid (generated object bases, all
// simulated charges) and writes the JSON report.
func runOCB(sc bench.Scale, out string, csv, plot bool) {
	t0 := time.Now()
	rep, fig, err := bench.OCB(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: ocb: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fig.PrintCSV(os.Stdout)
	} else {
		fig.Print(os.Stdout)
	}
	if plot {
		fig.PrintPlot(os.Stdout)
	}
	for _, m := range rep.Mixes {
		fmt.Printf("  %-15s classes=%d fanout=%d depth=%d objects=%d heap=%dp pool=%dp lazy/deferred CPU=%.2f identical=%v\n",
			m.Name, m.Params.Classes, m.Params.FanOut, m.Params.Depth,
			m.Objects, m.HeapPages, m.BufferPages, m.LazyOverDeferredCPU, m.ResultsIdentical)
	}
	if rep.Tradeoff != "" {
		fmt.Printf("  tradeoff: %s\n", rep.Tradeoff)
	}
	writeJSON(rep, out, "ocb")
	fmt.Printf("  (ocb completed in %v wall time)\n\n", time.Since(t0).Round(time.Millisecond))
}

// runThroughput runs the wall-clock suite (quiescent mixes plus the
// writer-interference section) and writes the JSON report.
func runThroughput(sc bench.Scale, out string, csv, plot bool) {
	t0 := time.Now()
	warnNumCPU()
	rep, fig, err := bench.Throughput(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: throughput: %v\n", err)
		os.Exit(1)
	}
	irep, ifig, err := bench.WriterInterference(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: throughput: %v\n", err)
		os.Exit(1)
	}
	rep.WriterInterference = irep
	for _, f := range []*bench.Figure{fig, ifig} {
		if csv {
			f.PrintCSV(os.Stdout)
		} else {
			f.Print(os.Stdout)
		}
		if plot {
			f.PrintPlot(os.Stdout)
		}
	}
	writeJSON(rep, out, "throughput")
	fmt.Printf("  (throughput completed in %v wall time)\n\n", time.Since(t0).Round(time.Millisecond))
}

// runMVCC runs only the writer-interference suite and merges it into the
// existing throughput report (or writes a fresh report holding just that
// section when none exists yet).
func runMVCC(sc bench.Scale, out string, csv, plot bool) {
	t0 := time.Now()
	warnNumCPU()
	irep, fig, err := bench.WriterInterference(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: mvcc: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fig.PrintCSV(os.Stdout)
	} else {
		fig.Print(os.Stdout)
	}
	if plot {
		fig.PrintPlot(os.Stdout)
	}
	rep := &bench.ThroughputReport{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, rep); err != nil {
			fmt.Fprintf(os.Stderr, "gombench: mvcc: existing %s is not a throughput report: %v\n", out, err)
			os.Exit(1)
		}
	}
	rep.WriterInterference = irep
	rep.NumCPUWarning = bench.NumCPUWarning()
	writeJSON(rep, out, "mvcc")
	fmt.Printf("  (mvcc completed in %v wall time)\n\n", time.Since(t0).Round(time.Millisecond))
}

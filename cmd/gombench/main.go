// Command gombench regenerates the tables and figures of the paper's
// evaluation section (Section 7) on the simulated GOM object base.
//
// Usage:
//
//	gombench -figure all            # every experiment at full scale
//	gombench -figure figure10       # one experiment
//	gombench -figure figure7 -short # reduced scale for a quick look
//	gombench -list
//
// Output values are simulated seconds (see DESIGN.md for the cost model);
// the shapes and break-even points are the reproduction target, not the
// absolute numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gomdb/internal/bench"
)

func main() {
	figure := flag.String("figure", "all", "experiment id (table1, figure7..figure15, ablation, throughput) or 'all'")
	short := flag.Bool("short", false, "run at reduced scale")
	list := flag.Bool("list", false, "list experiment ids and exit")
	cuboids := flag.Int("cuboids", 0, "override Cuboid database size (default 8000, paper scale)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	plot := flag.Bool("plot", false, "additionally render an ASCII log-scale plot")
	out := flag.String("out", "BENCH_throughput.json", "output path for -figure throughput")
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		fmt.Println("throughput")
		return
	}
	sc := bench.FullScale()
	if *short {
		sc = bench.ShortScale()
	}
	if *cuboids > 0 {
		sc.Cuboids = *cuboids
	}

	// The throughput suite measures wall-clock ops/sec, not simulated
	// seconds, so it lives outside the Registry: "-figure all" keeps
	// producing exactly the simulated figures it always has.
	if strings.ToLower(*figure) == "throughput" {
		runThroughput(sc, *out, *csv, *plot)
		return
	}

	ids := bench.IDs()
	if *figure != "all" {
		id := strings.ToLower(*figure)
		if _, ok := bench.Registry[id]; !ok {
			fmt.Fprintf(os.Stderr, "gombench: unknown experiment %q (use -list)\n", *figure)
			os.Exit(1)
		}
		ids = []string{id}
	}
	for _, id := range ids {
		t0 := time.Now()
		fig, err := bench.Registry[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gombench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fig.PrintCSV(os.Stdout)
		} else {
			fig.Print(os.Stdout)
		}
		if *plot {
			fig.PrintPlot(os.Stdout)
		}
		fmt.Printf("  (%s completed in %v wall time)\n\n", id, time.Since(t0).Round(time.Millisecond))
	}
}

// runThroughput runs the wall-clock suite and writes the JSON report.
func runThroughput(sc bench.Scale, out string, csv, plot bool) {
	t0 := time.Now()
	rep, fig, err := bench.Throughput(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: throughput: %v\n", err)
		os.Exit(1)
	}
	if csv {
		fig.PrintCSV(os.Stdout)
	} else {
		fig.Print(os.Stdout)
	}
	if plot {
		fig.PrintPlot(os.Stdout)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gombench: throughput: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "gombench: throughput: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  wrote %s\n", out)
	fmt.Printf("  (throughput completed in %v wall time)\n\n", time.Since(t0).Round(time.Millisecond))
}

// Command gomgen generates a synthetic object base at a chosen scale and
// reports storage, materialization, and analysis statistics — useful for
// sizing experiments and for inspecting what the schema rewrite does.
//
//	gomgen -cuboids 8000 -materialize volume,weight
//	gomgen -db company
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/lang"
)

func main() {
	dbKind := flag.String("db", "geometry", "geometry or company")
	cuboids := flag.Int("cuboids", 8000, "number of cuboids (geometry)")
	encaps := flag.Bool("encapsulated", false, "strictly encapsulated Cuboid schema")
	materialize := flag.String("materialize", "volume", "comma-separated Cuboid functions to materialize (geometry), or 'none'")
	flag.Parse()

	db := gomdb.Open(gomdb.DefaultConfig())
	switch *dbKind {
	case "geometry":
		if err := fixtures.DefineGeometry(db, *encaps); err != nil {
			fatal(err)
		}
		if _, err := fixtures.PopulateGeometry(db, *cuboids, 42); err != nil {
			fatal(err)
		}
	case "company":
		if err := fixtures.DefineCompany(db); err != nil {
			fatal(err)
		}
		if _, err := fixtures.PopulateCompany(db, fixtures.Figure13Config()); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -db %q", *dbKind))
	}

	fmt.Printf("database: %d objects in %d heap pages (%d KB), disk %d pages\n",
		db.Objects.NumObjects(), db.Objects.HeapPages(), db.Objects.HeapPages()*4, db.Disk.NumPages())
	fmt.Printf("buffer pool: %d frames (%d KB)\n", db.Pool.Capacity(), db.Pool.Capacity()*4)

	// Static analysis report for the schema's side-effect-free functions.
	x := lang.NewExtractor(db.Schema, db.Schema)
	fmt.Println("\nRelAttr analysis (Appendix / Definition 5.1):")
	for _, fn := range db.Schema.Functions() {
		if !fn.SideEffectFree {
			continue
		}
		attrs, err := x.RelAttrs(fn)
		if err != nil {
			fmt.Printf("  %-24s unanalyzable: %v\n", fn.Name, err)
			continue
		}
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = a.String()
		}
		fmt.Printf("  %-24s {%s}\n", fn.Name, strings.Join(parts, ", "))
	}

	if *dbKind == "geometry" && *materialize != "none" && *materialize != "" {
		var funcs []string
		for _, f := range strings.Split(*materialize, ",") {
			funcs = append(funcs, "Cuboid."+strings.TrimSpace(f))
		}
		before := db.Snapshot()
		mode := gomdb.ModeObjDep
		if *encaps {
			mode = gomdb.ModeInfoHiding
		}
		g, err := db.Materialize(gomdb.MaterializeOptions{
			Funcs: funcs, Complete: true, Strategy: gomdb.Immediate, Mode: mode,
		})
		if err != nil {
			fatal(err)
		}
		d := db.Clock.Sub(before)
		fmt.Printf("\nmaterialized %s: %d entries, RRR %d tuples, %d hooks installed\n",
			g.Name, g.Len(), db.GMRs.RRR().Len(), db.GMRs.InstalledHookCount())
		fmt.Printf("materialization cost: %d physical reads, %d physical writes, %.1f simulated seconds\n",
			d.PhysReads, d.PhysWrites,
			float64(d.PhysReads+d.PhysWrites)*float64(db.Clock.IOCostMicros)/1e6+
				float64(d.CPUOps)*float64(db.Clock.CPUCostMicros)/1e6)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gomgen:", err)
	os.Exit(1)
}

// Command gomsim drives the deterministic simulation harness (internal/sim):
// seeded random workloads executed against a chosen engine configuration (or
// the whole strategy matrix), with invariant audits at every quiescent point.
// On an invariant violation the failing op trace is shrunk to a minimal
// reproducer and written as a replayable JSON artifact.
//
// Usage:
//
//	gomsim -seeds 25                         # 25 seeds, all strategies
//	gomsim -seed 42 -strategy deferred -v    # one seed, one config, full trace
//	gomsim -seeds 100 -faults -long          # nightly-style fault campaign
//	gomsim -seed-base 20260805 -seeds 50     # rotating nightly seed window
//	gomsim -durable -crashes -seeds 25       # crash-recovery campaign
//	gomsim -shards 4 -faults -durable -crashes  # sharded fault+crash campaign
//	gomsim -ocb -seeds 25                    # generated OCB-style object bases
//	gomsim -replay testdata/sim/repro.json   # re-run a saved reproducer
//
// With -durable each run executes against a file-backed store; -crashes
// additionally inserts crash-restart points (crash mid-batch, mid-flush,
// mid-materialize, torn page write) into every plan. -recluster inserts
// trace-driven reclustering passes (after fault/crash injection, so they can
// land inside fault windows and next to crash points); the directory ↔ heap
// auditor then verifies every relocation left the base intact. With
// -shards N every plan runs through the internal/shard scatter-gather router
// over N engines; fault windows target one shard's disk, crash points kill
// all shards with the mid-checkpoint injection armed on one, and the audits
// add the router's cross-shard routing invariants. With -ocb each workload
// runs against a generated OCB-style object base (internal/ocb demo
// parameters) instead of the hand-built fixture; -ocb composes with every
// axis except -shards. A violating durable run
// is re-executed with its store pinned under -out, so the on-disk state that
// fed recovery ships alongside the shrunk reproducer.
//
// Exit status is 0 when every run is clean (or a replayed artifact
// reproduces its recorded outcome) and 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gomdb/internal/ocb"
	"gomdb/internal/sim"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 10, "number of consecutive seeds to run")
		seed      = flag.Int64("seed", 0, "run exactly this seed (overrides -seeds)")
		seedBase  = flag.Int64("seed-base", 1, "first seed of the window (nightly runs rotate this, e.g. -seed-base $(date +%Y%m%d))")
		ops       = flag.Int("ops", 150, "ops per workload")
		strategy  = flag.String("strategy", "", "immediate|lazy|deferred (default: all three)")
		memo      = flag.Bool("memo", false, "enable the forward-lookup memo cache")
		sc        = flag.Bool("second-chance", false, "enable second-chance immediate(o)")
		mds       = flag.Bool("mds", false, "maintain the multidimensional index")
		shards    = flag.Int("shards", 0, "horizontal shard count: run plans through the scatter-gather router over this many engines (0 = single engine)")
		bufShards = flag.Int("buffer-shards", 0, "buffer pool lock-stripe count (0 = default)")
		workers   = flag.Int("workers", 0, "deferred-flush worker count (0 = GOMAXPROCS)")
		faults    = flag.Bool("faults", false, "insert scripted fault windows into each plan")
		recl      = flag.Bool("recluster", false, "insert trace-driven reclustering passes into each plan")
		nomvcc    = flag.Bool("nomvcc", false, "disable the MVCC snapshot read path")
		useOCB    = flag.Bool("ocb", false, "run each workload against a generated OCB-style object base (demo parameters; incompatible with -shards)")
		durable   = flag.Bool("durable", false, "run against a file-backed store (checkpoints + WAL + recovery)")
		crashes   = flag.Bool("crashes", false, "insert crash-restart points into each plan (implies -durable)")
		broken    = flag.Bool("broken", false, "arm the deliberately-broken invalidation path (audits must fail)")
		outDir    = flag.String("out", filepath.Join("testdata", "sim"), "directory for shrunk reproducer artifacts")
		replay    = flag.String("replay", "", "replay a saved artifact instead of generating workloads")
		verbose   = flag.Bool("v", false, "print the full op trace of every run")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay, *verbose))
	}

	var configs []sim.EngineConfig
	strategies := []string{"immediate", "lazy", "deferred"}
	if *strategy != "" {
		strategies = []string{*strategy}
	}
	if *crashes {
		*durable = true
	}
	if *useOCB && *shards > 0 {
		fmt.Fprintln(os.Stderr, "gomsim: -ocb cannot be combined with -shards (router parity for generated bases is pinned in internal/ocb)")
		os.Exit(1)
	}
	var ocbParams *ocb.Params
	if *useOCB {
		p := ocb.Demo()
		ocbParams = &p
	}
	for _, s := range strategies {
		configs = append(configs, sim.EngineConfig{
			Strategy: s, Memo: *memo, SecondChance: *sc, UseMDS: *mds,
			BufferShards: *bufShards, Shards: *shards, RematWorkers: *workers,
			Broken: *broken, Durable: *durable, DisableMVCC: *nomvcc,
			OCB: ocbParams,
		})
	}

	first, count := *seedBase, int64(*seeds)
	if *seed != 0 {
		first, count = *seed, 1
	}

	failures := 0
	for _, cfg := range configs {
		for s := first; s < first+count; s++ {
			opt := sim.GenOptions{Ops: *ops, Faults: *faults, Crashes: *crashes, Recluster: *recl}
			var plan sim.Plan
			if ocbParams != nil {
				plan = sim.GenerateOCB(s, *ocbParams, opt)
			} else {
				plan = sim.Generate(s, opt)
			}
			res := sim.Run(cfg, plan)
			status := "ok"
			if res.Violation != nil {
				status = "VIOLATION " + res.Violation.String()
			}
			fmt.Printf("seed %-6d %-24s ops=%-4d faults=%-3d sim=%8.2fs %s\n",
				s, cfg, len(plan.Ops), res.FaultsInjected, res.Clock.SimSeconds(), status)
			if *verbose {
				for _, line := range res.Trace {
					fmt.Println("  " + line)
				}
			}
			if res.Violation == nil {
				continue
			}
			failures++
			a := sim.ShrinkToArtifact(cfg, plan, "gomsim")
			path := filepath.Join(*outDir, fmt.Sprintf("repro-seed%d-%s.json", s, cfg))
			if err := a.Save(path); err != nil {
				fmt.Fprintf(os.Stderr, "saving reproducer: %v\n", err)
			} else {
				fmt.Printf("  shrunk to %d ops -> %s\n", len(a.Ops), path)
			}
			if cfg.Durable {
				// Re-run the shrunk reproducer with its store pinned next to
				// the artifact: the directory holds the exact on-disk state
				// (data file, WAL, checkpoint metadata) recovery last saw.
				pinned := a.Config
				pinned.CrashDir = filepath.Join(*outDir, fmt.Sprintf("db-seed%d-%s", s, cfg))
				sim.Run(pinned, a.Plan())
				fmt.Printf("  durable store preserved in %s\n", pinned.CrashDir)
			}
		}
	}
	if failures > 0 {
		fmt.Printf("%d run(s) violated invariants\n", failures)
		os.Exit(1)
	}
	fmt.Println("all runs clean")
}

func runReplay(path string, verbose bool) int {
	a, err := sim.LoadArtifact(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res := sim.Replay(a)
	if verbose {
		for _, line := range res.Trace {
			fmt.Println(line)
		}
	}
	switch {
	case res.Violation != nil:
		fmt.Printf("replay of %s: VIOLATION %s\n", path, res.Violation)
		if a.Violation == "" {
			return 1 // artifact claimed a clean run
		}
		return 0 // reproduced the recorded violation
	case a.Violation != "":
		fmt.Printf("replay of %s: clean, but artifact records %q — no longer reproduces\n", path, a.Violation)
		return 1
	default:
		fmt.Printf("replay of %s: clean\n", path)
		return 0
	}
}

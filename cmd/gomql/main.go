// Command gomql is an interactive GOMql shell over a sample GOM object base
// with function materialization.
//
//	gomql -db geometry -n 100       # Cuboid sample database
//	gomql -db company               # Company sample database
//
// Statements:
//
//	range c: Cuboid retrieve c.volume where c.CuboidID = 3
//	range c: Cuboid materialize c.volume, c.weight where c.Mat.Name = "Iron"
//	define Cuboid.density: float is return self.weight / self.volume end
//
// Dot commands: .help .types .gmrs .gmr <name> .stats .explain .trace
// .check .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"gomdb"
	"gomdb/internal/core"
	"gomdb/internal/fixtures"
)

func main() {
	dbKind := flag.String("db", "geometry", "sample database: geometry or company")
	n := flag.Int("n", 100, "number of cuboids (geometry database)")
	encaps := flag.Bool("encapsulated", false, "use the strictly encapsulated Cuboid schema (Section 5.3)")
	flag.Parse()

	db := gomdb.Open(gomdb.DefaultConfig())
	switch *dbKind {
	case "geometry":
		if err := fixtures.DefineGeometry(db, *encaps); err != nil {
			fatal(err)
		}
		if _, err := fixtures.PopulateGeometry(db, *n, 42); err != nil {
			fatal(err)
		}
		fmt.Printf("geometry database: %d cuboids, %d objects, %d heap pages\n",
			*n, db.Objects.NumObjects(), db.Objects.HeapPages())
	case "company":
		if err := fixtures.DefineCompany(db); err != nil {
			fatal(err)
		}
		cfg := fixtures.Figure15Config()
		if _, err := fixtures.PopulateCompany(db, cfg); err != nil {
			fatal(err)
		}
		fmt.Printf("company database: %d departments x %d employees, %d projects\n",
			cfg.Departments, cfg.EmpsPerDep, cfg.Projects)
	default:
		fatal(fmt.Errorf("unknown -db %q", *dbKind))
	}

	explain := false
	trace := false
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("gomql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		// A "define Type.op ... end" block may span multiple lines.
		if strings.HasPrefix(strings.ToLower(line), "define ") {
			src := line
			for !strings.HasSuffix(strings.TrimSpace(src), "end") {
				fmt.Print("  ...> ")
				if !sc.Scan() {
					break
				}
				src += "\n" + sc.Text()
			}
			if fn, err := db.Schema.DefineFuncSrc(src, true); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("defined %s (side-effect free, materializable)\n", fn.Name)
			}
			fmt.Print("gomql> ")
			continue
		}
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".help":
			fmt.Println(`statements:  range v: Type retrieve ... [where ...]
             range v: Type materialize v.f1, v.f2 [where ...]
commands:    .types        list types
             .gmrs         list GMRs
             .gmr <name>   show a GMR's extension and rewrite plan
             .stats        storage and GMR-manager statistics
             .explain      toggle plan explanations
             .trace        toggle GMR-manager event tracing
             .check        run the consistency checker on every GMR
             .quit`)
		case line == ".types":
			for _, tn := range db.Schema.Reg.Types() {
				t := db.Schema.Reg.Lookup(tn)
				fmt.Printf("  %-12s %v", tn, t.Kind)
				if t.Super != "" {
					fmt.Printf(" <: %s", t.Super)
				}
				if t.StrictEncapsulated {
					fmt.Printf(" (strictly encapsulated)")
				}
				fmt.Println()
			}
		case line == ".gmrs":
			for _, name := range db.GMRs.GMRs() {
				g, _ := db.GMRs.Get(name)
				fmt.Printf("  %s  entries=%d strategy=%v mode=%v complete=%v\n",
					name, g.Len(), g.Strategy, g.Mode, g.Complete)
			}
		case strings.HasPrefix(line, ".gmr "):
			name := strings.TrimSpace(strings.TrimPrefix(line, ".gmr "))
			g, ok := db.GMRs.Get(name)
			if !ok {
				fmt.Printf("no GMR %q\n", name)
				break
			}
			fmt.Printf("%s over %v\n", g.Name, g.ArgTypes)
			shown := 0
			g.Entries(func(args, results []gomdb.Value, valid []bool) bool {
				fmt.Printf("  %v ->", args)
				for i, r := range results {
					fmt.Printf(" %v(valid=%v)", r, valid[i])
				}
				fmt.Println()
				shown++
				return shown < 20
			})
			if g.Len() > 20 {
				fmt.Printf("  ... %d more entries\n", g.Len()-20)
			}
			fmt.Println("rewritten update operations:")
			fmt.Println(db.GMRs.DescribePlan(g))
		case line == ".stats":
			snap := db.Snapshot()
			fmt.Printf("  simulated seconds: %.2f\n", db.SimSeconds())
			fmt.Printf("  physical I/O: %d reads, %d writes; logical: %d reads, %d writes\n",
				snap.PhysReads, snap.PhysWrites, snap.LogReads, snap.LogWrites)
			fmt.Printf("  GMR manager: %+v\n", db.GMRs.Stats)
		case line == ".explain":
			explain = !explain
			if explain {
				db.Queries.Explain = func(s string) { fmt.Println("  --", s) }
			} else {
				db.Queries.Explain = nil
			}
			fmt.Printf("explain %v\n", explain)
		case line == ".trace":
			trace = !trace
			if trace {
				db.GMRs.SetTrace(func(e core.TraceEvent) { fmt.Println("  **", e) })
			} else {
				db.GMRs.SetTrace(nil)
			}
			fmt.Printf("trace %v\n", trace)
		case line == ".check":
			for _, name := range db.GMRs.GMRs() {
				rep, err := db.GMRs.CheckConsistency(name, 1e-9, true)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Println(" ", rep)
				for i, v := range rep.Violations {
					if i == 5 {
						fmt.Printf("    ... %d more violations\n", len(rep.Violations)-5)
						break
					}
					fmt.Println("    !", v)
				}
			}
		case strings.HasPrefix(line, "."):
			fmt.Printf("unknown command %q (.help)\n", line)
		default:
			res, err := db.Query(line, nil)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Println(strings.Join(res.Columns, " | "))
			for i, row := range res.Rows {
				if i == 50 {
					fmt.Printf("... %d more rows\n", len(res.Rows)-50)
					break
				}
				parts := make([]string, len(row))
				for j, v := range row {
					parts[j] = v.String()
				}
				fmt.Println(strings.Join(parts, " | "))
			}
			fmt.Printf("(%d rows)\n", len(res.Rows))
		}
		fmt.Print("gomql> ")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gomql:", err)
	os.Exit(1)
}

// Command gomserve serves a GOM object base over TCP: the length-prefixed
// binary protocol of internal/wire, spoken by the gomdb/client package.
//
//	gomserve -addr :7227 -db geometry -n 1000     # plain engine
//	gomserve -addr :7227 -shards 4                # scatter-gather router
//	gomserve -auth-token sesame -max-conns 64     # auth stub + admission cap
//
// The served database is seeded from the same sample fixtures as gomql
// (-db geometry|company|none), or generated: -db ocb serves a synthetic
// OCB-style object base (internal/ocb demo parameters, -n instances per
// class) and -db ocb:<seed> picks the generation seed explicitly (otherwise
// -seed applies). Schema definition has no wire opcode, so an empty base
// (-db none) only accepts data operations against types a fixture would
// have defined. Clients create GMRs over the wire with Materialize.
// SIGINT/SIGTERM drains: in-flight requests complete, open interactive
// batches of vanished clients are aborted and their engine locks released,
// then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/ocb"
	"gomdb/internal/server"
	"gomdb/internal/shard"
)

func main() {
	var (
		addr         = flag.String("addr", ":7227", "TCP listen address")
		shards       = flag.Int("shards", 1, "number of engine shards (>1 serves the scatter-gather router)")
		dbKind       = flag.String("db", "geometry", "database to seed: geometry, company, ocb[:<seed>], or none")
		n            = flag.Int("n", 100, "number of cuboids (geometry) or instances per class (ocb)")
		seed         = flag.Int64("seed", 42, "population seed (geometry and ocb databases)")
		bufferPages  = flag.Int("buffer-pages", 0, "buffer pool pages per engine (default: engine default)")
		authToken    = flag.String("auth-token", os.Getenv("GOMSERVE_TOKEN"), "require this token in the client hello (default $GOMSERVE_TOKEN; empty disables auth)")
		maxConns     = flag.Int("max-conns", 0, "maximum concurrent sessions (0 = unlimited; excess connections are refused with a busy error)")
		readTimeout  = flag.Duration("read-timeout", 5*time.Minute, "per-frame read deadline (0 disables)")
		writeTimeout = flag.Duration("write-timeout", time.Minute, "per-frame write deadline (0 disables)")
		chunkRows    = flag.Int("chunk-rows", 0, "rows per streamed result chunk (0 = default)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight sessions before force-closing")
	)
	flag.Parse()

	be, err := buildBackend(*shards, *dbKind, *n, *seed, *bufferPages)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{
		Backend:      be,
		AuthToken:    *authToken,
		MaxConns:     *maxConns,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		ChunkRows:    *chunkRows,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gomserve: %s database on %s (%d shard(s), auth %s)\n",
		*dbKind, ln.Addr(), *shards, onOff(*authToken != ""))

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("gomserve: %v, draining (up to %v)\n", s, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		<-done // Serve returns ErrServerClosed once the listener closes
	case err := <-done:
		if err != nil && err != server.ErrServerClosed {
			fatal(err)
		}
	}
	if v := srv.AuditQuiescent(); len(v) != 0 {
		fatal(fmt.Errorf("post-drain audit: %v", v))
	}
	st := srv.Stats()
	fmt.Printf("gomserve: drained clean (%d sessions served, %d requests, %d refused, %d batches aborted)\n",
		st.Sessions, st.Requests, st.Refused, st.AbortedBatches)
}

// buildBackend opens the engine (or router) and seeds the sample fixture or
// generated base.
func buildBackend(shards int, dbKind string, n int, seed int64, bufferPages int) (server.Backend, error) {
	if shards < 1 {
		return nil, fmt.Errorf("-shards %d: need at least 1", shards)
	}
	ocbBase, err := parseOCB(dbKind, n, seed)
	if err != nil {
		return nil, err
	}
	ecfg := gomdb.DefaultConfig()
	if bufferPages > 0 {
		ecfg.BufferPages = bufferPages
	}
	if shards > 1 {
		db := shard.Open(shard.Config{Shards: shards, Engine: ecfg})
		switch {
		case ocbBase != nil:
			if err := ocb.DefineSharded(db, ocbBase.P); err != nil {
				return nil, err
			}
			if _, err := ocb.PopulateSharded(db, ocbBase); err != nil {
				return nil, err
			}
		case dbKind == "geometry":
			if err := fixtures.DefineGeometrySharded(db, false); err != nil {
				return nil, err
			}
			if _, err := fixtures.PopulateGeometrySharded(db, n, seed); err != nil {
				return nil, err
			}
		case dbKind == "none":
		default:
			return nil, fmt.Errorf("-db %q is not available with -shards > 1 (use geometry, ocb, or none)", dbKind)
		}
		return server.Sharded{DB: db}, nil
	}
	db := gomdb.Open(ecfg)
	switch {
	case ocbBase != nil:
		if err := ocb.Define(db, ocbBase.P); err != nil {
			return nil, err
		}
		if _, err := ocb.Populate(db, ocbBase); err != nil {
			return nil, err
		}
	case dbKind == "geometry":
		if err := fixtures.DefineGeometry(db, false); err != nil {
			return nil, err
		}
		if _, err := fixtures.PopulateGeometry(db, n, seed); err != nil {
			return nil, err
		}
	case dbKind == "company":
		if err := fixtures.DefineCompany(db); err != nil {
			return nil, err
		}
		if _, err := fixtures.PopulateCompany(db, fixtures.Figure15Config()); err != nil {
			return nil, err
		}
	case dbKind == "none":
	default:
		return nil, fmt.Errorf("unknown -db %q (geometry, company, ocb, or none)", dbKind)
	}
	return server.Embedded{DB: db}, nil
}

// parseOCB recognizes -db ocb and -db ocb:<seed> and generates the base
// (demo parameters, -n instances per class). Returns nil for other kinds.
func parseOCB(dbKind string, n int, seed int64) (*ocb.Base, error) {
	if dbKind != "ocb" && !strings.HasPrefix(dbKind, "ocb:") {
		return nil, nil
	}
	if rest, ok := strings.CutPrefix(dbKind, "ocb:"); ok {
		s, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-db %q: bad ocb seed: %v", dbKind, err)
		}
		seed = s
	}
	p := ocb.Demo()
	if n > 0 {
		p.Instances = n
	}
	base, err := ocb.Gen(p, seed)
	if err != nil {
		return nil, fmt.Errorf("-db ocb: %w", err)
	}
	return base, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gomserve: %v\n", err)
	os.Exit(1)
}

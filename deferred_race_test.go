package gomdb_test

// Property test of the deferred update path under concurrency — run with the
// race detector (`make test-race`). Readers hammer forward lookups (some of
// which land on pending entries and force them), writers push vertex-move
// bursts through Batch (whose end is a flush point) or call Flush directly.
// After every round reaches quiescence, Definition 3.2 consistency and
// Definition 3.4 completeness must hold and the RRR must be sound.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

func TestDeferredConsistencyUnderConcurrency(t *testing.T) {
	for _, sc := range []bool{false, true} {
		sc := sc
		name := "plain"
		if sc {
			name = "secondchance"
		}
		t.Run(name, func(t *testing.T) {
			cfg := gomdb.DefaultConfig()
			cfg.RematWorkers = 4
			db := gomdb.Open(cfg)
			if err := fixtures.DefineGeometry(db, false); err != nil {
				t.Fatal(err)
			}
			g, err := fixtures.PopulateGeometry(db, 24, 13)
			if err != nil {
				t.Fatal(err)
			}
			gmr, err := db.Materialize(gomdb.MaterializeOptions{
				Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
				Strategy: gomdb.Deferred, Mode: gomdb.ModeObjDep, SecondChance: sc,
			})
			if err != nil {
				t.Fatal(err)
			}
			base := append([]gomdb.OID{}, g.Cuboids...)
			vertices := []string{"V1", "V2", "V4", "V5"}

			for round := 0; round < 3; round++ {
				const readers, writers = 3, 2
				const readerOps, writerBursts = 150, 12
				var wg sync.WaitGroup
				fail := make(chan error, readers+writers)
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for i := 0; i < readerOps; i++ {
							oid := base[rng.Intn(len(base))]
							fn := "Cuboid.volume"
							if rng.Intn(2) == 0 {
								fn = "Cuboid.weight"
							}
							// Some of these land on pending entries and must
							// force exactly that entry, concurrently with
							// batch flushes.
							if _, err := db.Call(fn, gomdb.Ref(oid)); err != nil {
								fail <- fmt.Errorf("reader: %w", err)
								return
							}
						}
					}(int64(900*round + 10 + r))
				}
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for b := 0; b < writerBursts; b++ {
							if b%3 == 2 {
								// Bare updates outside a batch: these leave
								// the queue pending until the next flush, so
								// concurrent readers land on pending entries
								// and force them one at a time.
								for i := 0; i < 4; i++ {
									c := base[rng.Intn(len(base))]
									v, err := db.GetAttr(c, vertices[rng.Intn(len(vertices))])
									if err != nil {
										fail <- fmt.Errorf("writer read vertex: %w", err)
										return
									}
									if err := db.Set(v.R, "X", gomdb.Float(1+rng.Float64()*10)); err != nil {
										fail <- fmt.Errorf("writer set vertex: %w", err)
										return
									}
								}
								continue
							}
							// A burst of vertex moves against a handful of
							// cuboids; the Batch end flushes them in one
							// parallel drain.
							err := db.Batch(func(tx *gomdb.Tx) error {
								for i := 0; i < 6; i++ {
									c := base[rng.Intn(len(base))]
									v, err := tx.GetAttr(c, vertices[rng.Intn(len(vertices))])
									if err != nil {
										return err
									}
									attr := []string{"X", "Y", "Z"}[rng.Intn(3)]
									if err := tx.Set(v.R, attr, gomdb.Float(1+rng.Float64()*10)); err != nil {
										return err
									}
								}
								return nil
							})
							if err != nil {
								fail <- fmt.Errorf("writer batch: %w", err)
								return
							}
							if rng.Intn(3) == 0 {
								if err := db.Flush(); err != nil {
									fail <- fmt.Errorf("writer flush: %w", err)
									return
								}
							}
						}
					}(int64(900*round + 50 + w))
				}
				wg.Wait()
				close(fail)
				for err := range fail {
					t.Fatal(err)
				}

				// Quiescent: drain whatever the last bursts left pending, then
				// audit.
				if err := db.Flush(); err != nil {
					t.Fatal(err)
				}
				if got := db.GMRs.PendingLen(); got != 0 {
					t.Fatalf("round %d: %d items still pending after flush", round, got)
				}
				rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
				if err != nil {
					t.Fatal(err)
				}
				if err := rep.Err(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				// RRR soundness: one reorganization sweep may clear blind
				// references; a second must find nothing.
				if _, err := db.GMRs.ReorganizeRRR(); err != nil {
					t.Fatal(err)
				}
				n, err := db.GMRs.ReorganizeRRR()
				if err != nil {
					t.Fatal(err)
				}
				if n != 0 {
					t.Fatalf("round %d: second RRR reorganization removed %d tuples", round, n)
				}
				assertNoPins(t, db, "after deferred stress")
			}
			st := &db.GMRs.Stats
			if atomic.LoadInt64(&st.Flushes) == 0 || atomic.LoadInt64(&st.DeferredUpdates) == 0 {
				t.Fatalf("workload did not exercise the deferred path (flushes=%d deferred=%d)",
					atomic.LoadInt64(&st.Flushes), atomic.LoadInt64(&st.DeferredUpdates))
			}
			t.Logf("deferred=%d coalesced=%d forces=%d flushes=%d flushedItems=%d highWater=%d",
				atomic.LoadInt64(&st.DeferredUpdates), atomic.LoadInt64(&st.CoalescedUpdates),
				atomic.LoadInt64(&st.DeferredForces), atomic.LoadInt64(&st.Flushes),
				atomic.LoadInt64(&st.FlushedItems), atomic.LoadInt64(&st.QueueHighWater))
		})
	}
}

package gomdb_test

// Concurrency and resource-hygiene tests of the public API: buffer pins must
// balance after every operation (including failed ones), and the engine must
// stay consistent under a mixed concurrent workload — run these with the
// race detector (`make test-race`).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

// assertNoPins fails if any buffer frame is still pinned.
func assertNoPins(t *testing.T, db *gomdb.Database, ctx string) {
	t.Helper()
	if n := db.Pool.PinnedCount(); n != 0 {
		t.Fatalf("%s: %d frames left pinned", ctx, n)
	}
}

// TestNoPinLeaks walks the whole public surface — definition, population,
// materialization, queries, updates, retrieval, audit, teardown — asserting
// after each call that every buffer pin has been released.
func TestNoPinLeaks(t *testing.T) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	assertNoPins(t, db, "DefineGeometry")
	g, err := fixtures.ExampleGeometry(db)
	if err != nil {
		t.Fatal(err)
	}
	assertNoPins(t, db, "ExampleGeometry")
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertNoPins(t, db, "Materialize")
	steps := []struct {
		name string
		run  func() error
	}{
		{"Call", func() error {
			_, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[0]))
			return err
		}},
		{"Query", func() error {
			_, err := db.Query(`range c: Cuboid retrieve c.CuboidID where c.volume > 100.0`, nil)
			return err
		}},
		{"Retrieve", func() error {
			_, err := db.Retrieve(gmr.Name, []gomdb.FieldSpec{
				gomdb.AnySpec(), gomdb.RangeSpec(0, 500), gomdb.AnySpec(),
			})
			return err
		}},
		{"GetAttr", func() error {
			_, err := db.GetAttr(g.Cuboids[0], "Value")
			return err
		}},
		{"Set", func() error {
			return db.Set(g.MaterialO[0], "SpecWeight", gomdb.Float(8.0))
		}},
		{"CheckConsistency", func() error {
			rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
			if err != nil {
				return err
			}
			return rep.Err()
		}},
		{"Delete", func() error { return db.Delete(g.Cuboids[2]) }},
		{"Dematerialize", func() error { return db.Dematerialize(gmr.Name) }},
	}
	for _, s := range steps {
		if err := s.run(); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		assertNoPins(t, db, s.name)
	}
}

// TestNoPinLeaksOnErrors arms disk fault injection at every I/O offset and
// drives the update and query paths into the failure; whatever error
// surfaces, no buffer pin may remain held.
func TestNoPinLeaksOnErrors(t *testing.T) {
	for k := 1; k <= 50; k++ {
		db := rectangleDB(t)
		for i := 1; i <= 6; i++ {
			db.MustNew("Rectangle", gomdb.Float(float64(i)), gomdb.Float(2))
		}
		if _, err := db.Query(`range r: Rectangle materialize r.area`, nil); err != nil {
			t.Fatal(err)
		}
		oids := db.Extension("Rectangle")
		db.Disk.FailAfter(k)
		// Each step may or may not reach the armed failure; only the pin
		// balance matters.
		_, _ = db.Query(`range r: Rectangle retrieve r.Width where r.area >= 4.0`, nil)
		_ = db.Set(oids[0], "Width", gomdb.Float(9))
		_, _ = db.Call("Rectangle.area", gomdb.Ref(oids[1]))
		_, _ = db.New("Rectangle", gomdb.Float(7), gomdb.Float(7))
		_ = db.Delete(oids[2])
		db.Disk.ClearFailure()
		assertNoPins(t, db, fmt.Sprintf("FailAfter(%d)", k))
	}
}

// TestConcurrentStress runs four readers against two writers on a shared
// database with a complete two-function GMR, then verifies after quiescence
// that Definition 3.2 consistency, completeness, RRR soundness, and the pin
// balance all held up. The race detector turns any unguarded shared state
// into a hard failure.
func TestConcurrentStress(t *testing.T) {
	for _, mode := range []struct {
		name     string
		strategy gomdb.Strategy
	}{
		{"Immediate", gomdb.Immediate},
		{"Lazy", gomdb.Lazy},
	} {
		t.Run(mode.name, func(t *testing.T) {
			db := gomdb.Open(gomdb.DefaultConfig())
			if err := fixtures.DefineGeometry(db, false); err != nil {
				t.Fatal(err)
			}
			g, err := fixtures.PopulateGeometry(db, 16, 42)
			if err != nil {
				t.Fatal(err)
			}
			gmr, err := db.Materialize(gomdb.MaterializeOptions{
				Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
				Strategy: mode.strategy, Mode: gomdb.ModeObjDep,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Stable snapshot for the readers; writers never touch these.
			base := append([]gomdb.OID{}, g.Cuboids...)
			iron := g.MaterialO[0]

			const readers, writers = 4, 2
			const readerOps, writerOps = 150, 100
			var wg sync.WaitGroup
			fail := make(chan error, readers+writers)

			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < readerOps; i++ {
						oid := base[rng.Intn(len(base))]
						var err error
						switch rng.Intn(4) {
						case 0:
							_, err = db.Call("Cuboid.volume", gomdb.Ref(oid))
						case 1:
							_, err = db.Query(`range c: Cuboid retrieve c.CuboidID where c.volume > 100.0`, nil)
						case 2:
							_, err = db.Retrieve(gmr.Name, []gomdb.FieldSpec{
								gomdb.AnySpec(), gomdb.RangeSpec(0, 500), gomdb.AnySpec(),
							})
						case 3:
							_, err = db.GetAttr(oid, "Value")
						}
						if err != nil {
							fail <- fmt.Errorf("reader: %w", err)
							return
						}
					}
				}(int64(100 + r))
			}

			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					var mine []gomdb.OID // cuboids this writer created
					for i := 0; i < writerOps; i++ {
						switch {
						case rng.Intn(10) == 0:
							// Invalidate every weight at once.
							if err := db.Set(iron, "SpecWeight", gomdb.Float(7+rng.Float64())); err != nil {
								fail <- fmt.Errorf("writer set material: %w", err)
								return
							}
						case rng.Intn(3) == 0 && len(mine) > 0:
							oid := mine[len(mine)-1]
							mine = mine[:len(mine)-1]
							if err := db.Delete(oid); err != nil {
								fail <- fmt.Errorf("writer delete: %w", err)
								return
							}
						case rng.Intn(2) == 0:
							// Move one vertex of an own cuboid: invalidates
							// just that cuboid's entry.
							if len(mine) == 0 {
								continue
							}
							v, err := db.GetAttr(mine[len(mine)-1], "V2")
							if err != nil {
								fail <- fmt.Errorf("writer read vertex: %w", err)
								return
							}
							if err := db.Set(v.R, "X", gomdb.Float(rng.Float64()*10)); err != nil {
								fail <- fmt.Errorf("writer set vertex: %w", err)
								return
							}
						default:
							id := int64(1000*(w+1) + i)
							oid := fixtures.NewCuboid(db, id, 0, 0, 0,
								1+rng.Float64()*5, 1+rng.Float64()*5, 1+rng.Float64()*5,
								iron, 10)
							mine = append(mine, oid)
						}
					}
				}(w, int64(200+w))
			}

			wg.Wait()
			close(fail)
			for err := range fail {
				t.Fatal(err)
			}

			// Quiescence reached: re-verify the paper's invariants.
			rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
			// RRR soundness: a reorganization sweep may clear blind
			// references left by deletions; a second sweep must find none.
			if _, err := db.GMRs.ReorganizeRRR(); err != nil {
				t.Fatal(err)
			}
			n, err := db.GMRs.ReorganizeRRR()
			if err != nil {
				t.Fatal(err)
			}
			if n != 0 {
				t.Fatalf("second RRR reorganization removed %d tuples", n)
			}
			assertNoPins(t, db, "after stress")
		})
	}
}

// TestMemoCacheConsistencyUnderWrites is the property test for the
// forward-lookup memo cache: readers hammer memo-enabled forward lookups
// while writers invalidate entries (vertex moves) and whole columns
// (material changes), bumping the write epoch each time. After every round
// reaches quiescence, Definition 3.2 consistency must hold and the
// memo-served answers must agree with the authoritative GMR probe — i.e. the
// epoch check never lets a pre-write cached value leak past a write. Run
// with the race detector.
func TestMemoCacheConsistencyUnderWrites(t *testing.T) {
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume", "Cuboid.weight"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep, MemoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := append([]gomdb.OID{}, g.Cuboids...)
	iron := g.MaterialO[0]

	for round := 0; round < 3; round++ {
		const readers, writers = 3, 2
		const readerOps, writerOps = 200, 40
		var wg sync.WaitGroup
		fail := make(chan error, readers+writers)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < readerOps; i++ {
					oid := base[rng.Intn(len(base))]
					fn := "Cuboid.volume"
					if rng.Intn(2) == 0 {
						fn = "Cuboid.weight"
					}
					if _, err := db.Call(fn, gomdb.Ref(oid)); err != nil {
						fail <- fmt.Errorf("reader: %w", err)
						return
					}
				}
			}(int64(300*round + 10 + r))
		}
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < writerOps; i++ {
					if rng.Intn(4) == 0 {
						// Invalidate every weight at once.
						if err := db.Set(iron, "SpecWeight", gomdb.Float(7+rng.Float64())); err != nil {
							fail <- fmt.Errorf("writer set material: %w", err)
							return
						}
						continue
					}
					// Move one vertex: invalidates one cuboid's entry.
					v, err := db.GetAttr(base[rng.Intn(len(base))], "V2")
					if err != nil {
						fail <- fmt.Errorf("writer read vertex: %w", err)
						return
					}
					if err := db.Set(v.R, "X", gomdb.Float(1+rng.Float64()*10)); err != nil {
						fail <- fmt.Errorf("writer set vertex: %w", err)
						return
					}
				}
			}(int64(300*round + 20 + w))
		}
		wg.Wait()
		close(fail)
		for err := range fail {
			t.Fatal(err)
		}

		// Quiescent: the authoritative Definition 3.2 audit first.
		rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Then the memo property: with no writer running, the epoch is
		// stable, so the first Call fills the cache and the second is a memo
		// hit — both must return the audited value.
		epoch := db.GMRs.WriteEpoch()
		for _, oid := range base {
			for _, fn := range []string{"Cuboid.volume", "Cuboid.weight"} {
				v1, err := db.Call(fn, gomdb.Ref(oid))
				if err != nil {
					t.Fatal(err)
				}
				v2, err := db.Call(fn, gomdb.Ref(oid))
				if err != nil {
					t.Fatal(err)
				}
				f1, _ := v1.AsFloat()
				f2, _ := v2.AsFloat()
				if f1 != f2 {
					t.Fatalf("round %d: %s(%v) memo hit %v != fill %v", round, fn, oid, f2, f1)
				}
			}
		}
		if got := db.GMRs.WriteEpoch(); got != epoch {
			t.Fatalf("round %d: read-only verification bumped the write epoch %d -> %d", round, epoch, got)
		}
		if db.GMRs.MemoLen() == 0 {
			t.Fatalf("round %d: memo cache empty after verification pass", round)
		}
	}

	// Freshness: a cached value must not survive the write that obsoletes it.
	target := base[0]
	before, err := db.Call("Cuboid.volume", gomdb.Ref(target))
	if err != nil {
		t.Fatal(err)
	}
	e0 := db.GMRs.WriteEpoch()
	v, err := db.GetAttr(target, "V2")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Set(v.R, "X", gomdb.Float(123.5)); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.WriteEpoch() == e0 {
		t.Fatal("Set did not bump the write epoch")
	}
	after, err := db.Call("Cuboid.volume", gomdb.Ref(target))
	if err != nil {
		t.Fatal(err)
	}
	fb, _ := before.AsFloat()
	fa, _ := after.AsFloat()
	if fa == fb {
		t.Fatalf("volume unchanged (%v) after moving a vertex: stale memo value served", fa)
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-6, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	assertNoPins(t, db, "after memo property test")
}

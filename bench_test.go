package gomdb_test

// One testing.B benchmark per table and figure of the paper's evaluation
// section, plus micro-benchmarks of the hot maintenance paths. The figure
// benchmarks run at a reduced scale so `go test -bench=.` stays fast and
// report the key simulated-seconds numbers as custom metrics; the full-scale
// reproduction is `go run ./cmd/gombench -figure all` (results recorded in
// EXPERIMENTS.md).

import (
	"math"
	"testing"

	"gomdb"
	"gomdb/internal/bench"
	"gomdb/internal/fixtures"
)

func benchScale(b *testing.B) bench.Scale {
	b.Helper()
	sc := bench.ShortScale()
	if testing.Short() {
		sc = bench.Scale{Cuboids: 200, OpsDivisor: 10, Points: 10, CompanyDivisor: 10}
	}
	return sc
}

// runFigure runs one experiment per iteration and reports the endpoints of
// the first two series as metrics.
func runFigure(b *testing.B, id string) {
	sc := benchScale(b)
	var fig *bench.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = bench.Registry[id](sc)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	if fig != nil && len(fig.Series) >= 2 {
		s0 := fig.Series[0].Points
		s1 := fig.Series[1].Points
		if len(s0) > 0 && len(s1) > 0 {
			b.ReportMetric(s0[0], fig.Series[0].Name+"_first_simsec")
			b.ReportMetric(s1[len(s1)-1], fig.Series[1].Name+"_last_simsec")
		}
	}
}

func BenchmarkTable1ExampleGMR(b *testing.B) { runFigure(b, "table1") }
func BenchmarkFigure7(b *testing.B)          { runFigure(b, "figure7") }
func BenchmarkFigure8(b *testing.B)          { runFigure(b, "figure8") }
func BenchmarkFigure9(b *testing.B)          { runFigure(b, "figure9") }
func BenchmarkFigure10(b *testing.B)         { runFigure(b, "figure10") }
func BenchmarkFigure11(b *testing.B)         { runFigure(b, "figure11") }
func BenchmarkFigure13(b *testing.B)         { runFigure(b, "figure13") }
func BenchmarkFigure14(b *testing.B)         { runFigure(b, "figure14") }
func BenchmarkFigure15(b *testing.B)         { runFigure(b, "figure15") }

// ---- micro-benchmarks ----------------------------------------------------

func geometryDB(b *testing.B, n int, encaps bool, materialize bool, strategy gomdb.MaterializeOptions) (*gomdb.Database, *fixtures.Geometry) {
	b.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, encaps); err != nil {
		b.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, n, 42)
	if err != nil {
		b.Fatal(err)
	}
	if materialize {
		strategy.Funcs = []string{"Cuboid.volume"}
		strategy.Complete = true
		if _, err := db.Materialize(strategy); err != nil {
			b.Fatal(err)
		}
	}
	return db, g
}

// BenchmarkForwardLookup measures a forward query against a materialized
// function (GMR probe).
func BenchmarkForwardLookup(b *testing.B) {
	db, g := geometryDB(b, 1000, false, true, gomdb.MaterializeOptions{Mode: gomdb.ModeObjDep})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[i%len(g.Cuboids)])); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForwardCompute measures the same invocation without a GMR (full
// evaluation).
func BenchmarkForwardCompute(b *testing.B) {
	db, g := geometryDB(b, 1000, false, false, gomdb.MaterializeOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[i%len(g.Cuboids)])); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackwardRange measures a backward range query on the result
// index.
func BenchmarkBackwardRange(b *testing.B) {
	db, _ := geometryDB(b, 1000, false, true, gomdb.MaterializeOptions{Mode: gomdb.ModeObjDep})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := float64(i % 500)
		if _, err := db.GMRs.Backward("Cuboid.volume", lo, lo+20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleWithGMR measures the full invalidation + rematerialization
// cost of a scale under immediate maintenance.
func BenchmarkScaleWithGMR(b *testing.B) {
	db, g := geometryDB(b, 1000, false, true, gomdb.MaterializeOptions{
		Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	})
	unit := gomdb.Ref(fixtures.NewVertex(db, 1, 1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[i%len(g.Cuboids)]), unit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleInfoHiding measures the same update under information
// hiding (one invalidation per scale).
func BenchmarkScaleInfoHiding(b *testing.B) {
	db, g := geometryDB(b, 1000, true, true, gomdb.MaterializeOptions{
		Strategy: gomdb.Immediate, Mode: gomdb.ModeInfoHiding,
	})
	unit := gomdb.Ref(fixtures.NewVertex(db, 1, 1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Call("Cuboid.scale", gomdb.Ref(g.Cuboids[i%len(g.Cuboids)]), unit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRotateInfoHiding measures the no-op invalidation path: rotate is
// declared result-invariant.
func BenchmarkRotateInfoHiding(b *testing.B) {
	db, g := geometryDB(b, 1000, true, true, gomdb.MaterializeOptions{
		Strategy: gomdb.Immediate, Mode: gomdb.ModeInfoHiding,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Call("Cuboid.rotate", gomdb.Ref(g.Cuboids[i%len(g.Cuboids)]),
			gomdb.Float(math.Pi/7), gomdb.Str("z")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGOMqlBackwardQuery measures a parsed backward query end to end.
func BenchmarkGOMqlBackwardQuery(b *testing.B) {
	db, _ := geometryDB(b, 1000, false, true, gomdb.MaterializeOptions{Mode: gomdb.ModeObjDep})
	params := map[string]gomdb.Value{"lo": gomdb.Float(100), "hi": gomdb.Float(150)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`range c: Cuboid retrieve c where c.volume > $lo and c.volume < $hi`, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjectReadWrite measures the raw object manager round trip.
func BenchmarkObjectReadWrite(b *testing.B) {
	db, g := geometryDB(b, 1000, false, false, gomdb.MaterializeOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid := g.Cuboids[i%len(g.Cuboids)]
		o, err := db.Objects.Get(oid)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Objects.Put(o); err != nil {
			b.Fatal(err)
		}
	}
}

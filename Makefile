# gomdb — Function Materialization in Object Bases (SIGMOD 1991 reproduction)

GO ?= go

.PHONY: all build vet test test-short test-race bench bench-throughput bench-updates bench-mvcc bench-cluster bench-shard bench-serve bench-ocb check-determinism repro repro-short examples serve fuzz-wire sim sim-crash sim-long sim-shard sim-ocb cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The concurrency tests (concurrency_test.go) only bite under the race
# detector; CI runs this on every push.
test-race:
	$(GO) test -race ./...

# One testing.B benchmark per table/figure plus micro-benchmarks, at reduced
# scale; the full-scale reproduction is `make repro`.
bench:
	$(GO) test -bench=. -benchmem

# Wall-clock read-path scalability: the parallel testing.B sweep plus the
# gombench throughput suite (writes BENCH_throughput.json).
bench-throughput:
	$(GO) test -run '^$$' -bench 'Parallel' -cpu 1,2,4,8 -benchtime=200ms .
	$(GO) run ./cmd/gombench -figure throughput

# Burst-update cost: immediate vs lazy vs deferred, plus the deferred
# worker-pool sweep (writes BENCH_updates.json).
bench-updates:
	$(GO) run ./cmd/gombench -figure updates

# Trace-driven clustering: PhysReads and buffer miss rate on three
# deliberately-scattered bases, before and after db.Recluster() relocates
# objects along the forward-trace affinity order (writes BENCH_cluster.json;
# full scale is the committed report, `make bench-cluster SHORT=-short` for a
# quick smoke that leaves the committed JSON alone).
SHORT ?=
bench-cluster:
ifeq ($(SHORT),)
	$(GO) run ./cmd/gombench -figure cluster
else
	$(GO) run ./cmd/gombench -figure cluster $(SHORT) -out /tmp/BENCH_cluster_short.json
endif

# Horizontal sharding: wall-clock router throughput (forward/backward/
# tabular/mixed reads plus vertex-move updates) at 1, 2, 4, and 8 shards
# (writes BENCH_shard.json; `make bench-shard SHORT=-short` for a quick smoke
# that leaves the committed JSON alone).
bench-shard:
ifeq ($(SHORT),)
	$(GO) run ./cmd/gombench -figure shard
else
	$(GO) run ./cmd/gombench -figure shard $(SHORT) -out /tmp/BENCH_shard_short.json
endif

# Network service: wall-clock ops/sec through a real TCP client/server pair
# at 1..16 concurrent clients (writes BENCH_serve.json; `make bench-serve
# SHORT=-short` for a quick smoke that leaves the committed JSON alone).
bench-serve:
ifeq ($(SHORT),)
	$(GO) run ./cmd/gombench -figure serve
else
	$(GO) run ./cmd/gombench -figure serve $(SHORT) -out /tmp/BENCH_serve_short.json
endif

# OCB-style synthetic workload grid: generated object bases (class count,
# fan-out, derived-function depth, skew) measured under immediate/lazy/
# deferred with clustering off/on — all simulated charges, byte-identical
# run to run (writes BENCH_ocb.json; `make bench-ocb SHORT=-short` for a
# quick smoke that leaves the committed JSON alone).
bench-ocb:
ifeq ($(SHORT),)
	$(GO) run ./cmd/gombench -figure ocb
else
	$(GO) run ./cmd/gombench -figure ocb $(SHORT) -out /tmp/BENCH_ocb_short.json
endif

# Writer interference: reader ops/sec with a background writer holding the
# engine, MVCC snapshot reads vs. the DisableMVCC RWMutex baseline (merges
# the writer_interference section into BENCH_throughput.json).
bench-mvcc:
	$(GO) test -run '^$$' -bench 'ParallelForwardWithWriter' -cpu 1,2,4,8 -benchtime=200ms .
	$(GO) run ./cmd/gombench -figure mvcc

# The simulated figures must not depend on scheduling, core count, or worker
# pools: regenerate the short-scale suite and compare it (modulo wall-time
# lines) against the committed golden.
check-determinism:
	$(GO) run ./cmd/gombench -figure all -short | grep -v "wall time" | \
		diff testdata/gombench_all_short.golden - && echo "figures deterministic"

# Regenerate every table and figure of the paper's evaluation (Section 7)
# at the paper's scale. Takes ~8 minutes; output shapes are documented in
# EXPERIMENTS.md.
repro:
	$(GO) run ./cmd/gombench -figure all

repro-short:
	$(GO) run ./cmd/gombench -figure all -short

# Serve the geometry sample database over TCP (gomdb/client speaks to it;
# ADDR/SERVE_FLAGS override the defaults, e.g.
# `make serve SERVE_FLAGS="-shards 4 -max-conns 64"`).
ADDR ?= :7227
SERVE_FLAGS ?=
serve:
	$(GO) run ./cmd/gomserve -addr $(ADDR) $(SERVE_FLAGS)

# Fuzz the wire-protocol decoders: malformed frames and request payloads
# must produce structured wire errors, never a panic or a hang. Each target
# runs for FUZZ_TIME (CI smoke uses 15s; leave it running longer locally).
FUZZ_TIME ?= 15s
fuzz-wire:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzDecodeFrame -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzDecodeRequest -fuzztime $(FUZZ_TIME)

# Deterministic simulation smoke: a window of seeded random workloads against
# all three strategies, invariant audits at every quiescent point. Violations
# shrink to a replayable artifact under testdata/sim/.
sim:
	$(GO) run ./cmd/gomsim -seeds 10 -ops 150

# Crash-recovery campaign: durable (file-backed) runs with generated
# crash-restart points — crash mid-batch, mid-flush, mid-materialize, torn
# page writes — under the race detector. A violating run leaves its shrunk
# reproducer AND the on-disk store (data file, WAL, checkpoint metadata)
# under testdata/sim/.
sim-crash:
	$(GO) run -race ./cmd/gomsim -durable -crashes -seeds 25 -ops 150

# Sharded campaign: every plan through the 4-shard scatter-gather router with
# fault windows on single shards and crash points at divergent per-shard
# checkpoint horizons, under the race detector.
sim-shard:
	$(GO) run -race ./cmd/gomsim -shards 4 -faults -durable -crashes -seeds 15 -ops 150

# Generated-base campaign: every plan against an OCB-style synthetic object
# base (internal/ocb demo parameters) instead of the hand-built fixture,
# with fault windows, under the race detector.
sim-ocb:
	$(GO) run -race ./cmd/gomsim -ocb -faults -seeds 10 -ops 150

# Nightly-style campaign: more seeds, longer workloads, scripted fault
# windows, and the race detector over the whole sim test suite. Rotate the
# seed window with SIM_SEED_BASE (e.g. SIM_SEED_BASE=$$(date +%Y%m%d)).
SIM_SEED_BASE ?= 1
sim-long:
	$(GO) test -race -run 'TestSim|TestMatrix|TestFault|TestMutation|TestCharge|TestCrash|TestDurable' ./internal/sim/
	$(GO) run ./cmd/gomsim -seed-base $(SIM_SEED_BASE) -seeds 40 -ops 250 -faults
	$(GO) run ./cmd/gomsim -seed-base $(SIM_SEED_BASE) -seeds 20 -ops 200 -durable -crashes -faults

# Coverage over the engine and storage layers (the simulation harness drives
# most of both); writes cover.out and prints the per-function summary tail.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/core/...,./internal/storage/... ./...
	$(GO) tool cover -func=cover.out | tail -20

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/geometry
	$(GO) run ./examples/company
	$(GO) run ./examples/restricted
	$(GO) run ./examples/tabular

clean:
	$(GO) clean ./...

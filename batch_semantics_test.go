package gomdb_test

// Semantics of Batch when the callback errors: an error-only callback must
// leave no trace (no GMR/RRR mutations, no memo-epoch bump, nothing queued),
// while a callback that mutated before erroring still gets its flush point —
// applied updates must not leave the deferred queue stale across an unlocked
// window — and the callback's error takes precedence over the flush's.

import (
	"errors"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/storage"
)

var errCallback = errors.New("callback failed")

func batchFixture(t *testing.T, n int) (*gomdb.Database, *fixtures.Geometry, *gomdb.GMR) {
	t.Helper()
	db := gomdb.Open(gomdb.DefaultConfig())
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, n, 23)
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Strategy: gomdb.Deferred, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, g, gmr
}

// TestBatchErrorOnlyCallback: a batch whose callback fails without mutating
// anything is a true no-op — same write epoch (so memo-cached forward
// results stay live), nothing pending, GMR answers unchanged.
func TestBatchErrorOnlyCallback(t *testing.T) {
	db, g, gmr := batchFixture(t, 10)

	c := g.Cuboids[0]
	before, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatal(err)
	}
	epoch := db.GMRs.WriteEpoch()
	stored := gmr.Len()

	if err := db.Batch(func(tx *gomdb.Tx) error {
		return errCallback
	}); !errors.Is(err, errCallback) {
		t.Fatalf("Batch returned %v, want the callback error", err)
	}

	if got := db.GMRs.WriteEpoch(); got != epoch {
		t.Fatalf("write epoch bumped %d -> %d by a mutation-free batch", epoch, got)
	}
	if got := db.GMRs.PendingLen(); got != 0 {
		t.Fatalf("%d recomputations queued by a mutation-free batch", got)
	}
	if got := gmr.Len(); got != stored {
		t.Fatalf("GMR size changed %d -> %d", stored, got)
	}
	after, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatal(err)
	}
	if after.F != before.F {
		t.Fatalf("volume changed %v -> %v across a failed empty batch", before, after)
	}
}

// TestBatchMutateThenError: updates applied before the callback's error are
// NOT rolled back (Batch is a flush point, not a transaction), so the flush
// still runs: the deferred queue is empty on return, the GMR is congruent
// with the mutated objects, and the callback's error wins.
func TestBatchMutateThenError(t *testing.T) {
	db, g, gmr := batchFixture(t, 10)

	c := g.Cuboids[0]
	before, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatal(err)
	}
	epoch := db.GMRs.WriteEpoch()

	err = db.Batch(func(tx *gomdb.Tx) error {
		s, err := tx.New("Vertex", gomdb.Float(2.0), gomdb.Float(1.0), gomdb.Float(1.0))
		if err != nil {
			return err
		}
		if _, err := tx.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s)); err != nil {
			return err
		}
		return errCallback
	})
	if !errors.Is(err, errCallback) {
		t.Fatalf("Batch returned %v, want the callback error", err)
	}

	if got := db.GMRs.WriteEpoch(); got == epoch {
		t.Fatal("write epoch not bumped although the batch mutated an object")
	}
	if got := db.GMRs.PendingLen(); got != 0 {
		t.Fatalf("%d recomputations still pending: the flush point did not run", got)
	}
	after, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatal(err)
	}
	if after.F == before.F {
		t.Fatal("scale applied inside the failed batch is not visible")
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("GMR inconsistent after failed batch: %v", err)
	}
}

// TestBatchFlushErrorSurfaces: when the callback succeeds but the flush at
// the batch boundary fails (injected disk fault), Batch returns the flush
// error; when both fail, the callback's error takes precedence.
func TestBatchFlushErrorSurfaces(t *testing.T) {
	cfg := gomdb.DefaultConfig()
	cfg.BufferPages = 4 // force physical reads so the fault fires in the drain
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 10, 23)
	if err != nil {
		t.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Cuboid.volume"}, Complete: true,
		Strategy: gomdb.Deferred, Mode: gomdb.ModeObjDep,
	})
	if err != nil {
		t.Fatal(err)
	}

	scaleAll := func(tx *gomdb.Tx) error {
		for _, c := range g.Cuboids {
			s, err := tx.New("Vertex", gomdb.Float(1.1), gomdb.Float(1.0), gomdb.Float(1.0))
			if err != nil {
				return err
			}
			if _, err := tx.Call("Cuboid.scale", gomdb.Ref(c), gomdb.Ref(s)); err != nil {
				return err
			}
		}
		return nil
	}

	// Arm the fault inside the callback, after the mutations, so the first
	// charged read it can hit is the flush's phase-2 drain.
	armFault := func() {
		db.Disk.SetFaultPlan(storage.FaultPlan{Rules: []storage.FaultRule{
			{Op: storage.FaultRead, File: "objects", After: 0},
		}})
	}
	err = db.Batch(func(tx *gomdb.Tx) error {
		if err := scaleAll(tx); err != nil {
			return err
		}
		armFault()
		return nil
	})
	if err == nil {
		t.Fatal("Batch succeeded although its flush point hit a failing disk")
	}
	if !errors.Is(err, gomdb.ErrInjectedFault) {
		t.Fatalf("Batch error does not wrap ErrInjectedFault: %v", err)
	}
	db.Disk.ClearFaults()

	// Callback error outranks the flush error.
	err = db.Batch(func(tx *gomdb.Tx) error {
		if err := scaleAll(tx); err != nil {
			return err
		}
		armFault()
		return errCallback
	})
	if !errors.Is(err, errCallback) {
		t.Fatalf("Batch returned %v, want the callback error to take precedence", err)
	}

	// Recovery: clear the fault, flush, and the engine is congruent again.
	db.Disk.ClearFaults()
	if err := db.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	rep, err := db.CheckConsistency(gmr.Name, 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if cerr := rep.Err(); cerr != nil {
		t.Fatalf("GMR inconsistent after recovery: %v", cerr)
	}
}

package gomdb_test

// Wall-clock parallel benchmarks of the concurrent read path. Run the sweep
// the throughput suite automates with:
//
//	go test -run '^$' -bench 'Parallel' -cpu 1,2,4,8 .
//
// All four benchmarks drive quiescent databases, so every operation takes
// the shared-lock fast path; the ns/op deltas across -cpu values isolate
// the buffer-pool striping and memo-cache effects from writer interference.

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

// parallelDB builds a warmed geometry database with a complete
// <<volume,weight>> GMR for the parallel benchmarks.
func parallelDB(b *testing.B, shards int, memo bool) (*gomdb.Database, *fixtures.Geometry, string) {
	b.Helper()
	db := gomdb.Open(gomdb.Config{BufferPages: 8192, BufferShards: shards})
	if err := fixtures.DefineGeometry(db, false); err != nil {
		b.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 500, 42)
	if err != nil {
		b.Fatal(err)
	}
	gmr, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:     []string{"Cuboid.volume", "Cuboid.weight"},
		Complete:  true,
		Mode:      gomdb.ModeObjDep,
		Strategy:  gomdb.Immediate,
		MemoCache: memo,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, oid := range g.Cuboids {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(oid)); err != nil {
			b.Fatal(err)
		}
	}
	return db, g, gmr.Name
}

// forwardParallel is the shared body: concurrent forward lookups of random
// cuboid volumes against a warm pool.
func forwardParallel(b *testing.B, shards int, memo bool) {
	db, g, _ := parallelDB(b, shards, memo)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		for pb.Next() {
			if _, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[rng.Intn(len(g.Cuboids))])); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelForward is the default engine: lock-striped buffer pool,
// memo cache off.
func BenchmarkParallelForward(b *testing.B) { forwardParallel(b, 0, false) }

// BenchmarkParallelForwardSingleMutex pins the pool to one shard — the
// historical globally locked baseline.
func BenchmarkParallelForwardSingleMutex(b *testing.B) { forwardParallel(b, 1, false) }

// BenchmarkParallelForwardMemo adds the forward-lookup memo cache on top of
// the striped pool.
func BenchmarkParallelForwardMemo(b *testing.B) { forwardParallel(b, 0, true) }

// BenchmarkParallelBackward runs concurrent backward range queries through
// the query planner (selection on the GMR's result column).
func BenchmarkParallelBackward(b *testing.B) {
	db, _, _ := parallelDB(b, 0, false)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		for pb.Next() {
			lo := float64(rng.Intn(500))
			params := map[string]gomdb.Value{"lo": gomdb.Float(lo), "hi": gomdb.Float(lo + 25)}
			if _, err := db.Query(`range c: Cuboid retrieve c.CuboidID where c.volume > $lo and c.volume < $hi`, params); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelTabular runs concurrent tabular Retrieve calls (one
// FieldSpec per column).
func BenchmarkParallelTabular(b *testing.B) {
	db, _, gmrName := parallelDB(b, 0, false)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		for pb.Next() {
			lo := float64(rng.Intn(500))
			if _, err := db.Retrieve(gmrName, []gomdb.FieldSpec{
				gomdb.AnySpec(), gomdb.RangeSpec(lo, lo+25), gomdb.AnySpec(),
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkParallelQueryMix interleaves forward lookups, backward queries,
// and tabular retrievals in a 70/20/10 read mix.
func BenchmarkParallelQueryMix(b *testing.B) {
	db, g, gmrName := parallelDB(b, 0, false)
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		for pb.Next() {
			var err error
			switch r := rng.Intn(10); {
			case r < 7:
				_, err = db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[rng.Intn(len(g.Cuboids))]))
			case r < 9:
				lo := float64(rng.Intn(500))
				params := map[string]gomdb.Value{"lo": gomdb.Float(lo), "hi": gomdb.Float(lo + 25)}
				_, err = db.Query(`range c: Cuboid retrieve c.CuboidID where c.volume > $lo and c.volume < $hi`, params)
			default:
				lo := float64(rng.Intn(500))
				_, err = db.Retrieve(gmrName, []gomdb.FieldSpec{
					gomdb.AnySpec(), gomdb.RangeSpec(lo, lo+25), gomdb.AnySpec(),
				})
			}
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// withWriter runs the forward-lookup benchmark with one background writer
// continuously moving vertices (each move invalidates and immediately
// rematerializes the GMR entry under the exclusive lock). disableMVCC
// selects the historical blocking read path; the default engine answers the
// contended reads from MVCC snapshots instead.
func forwardParallelWithWriter(b *testing.B, disableMVCC bool) {
	db := gomdb.Open(gomdb.Config{BufferPages: 8192, DisableMVCC: disableMVCC})
	if err := fixtures.DefineGeometry(db, false); err != nil {
		b.Fatal(err)
	}
	g, err := fixtures.PopulateGeometry(db, 500, 42)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs:    []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true,
		Mode:     gomdb.ModeObjDep,
		Strategy: gomdb.Immediate,
	}); err != nil {
		b.Fatal(err)
	}
	for _, oid := range g.Cuboids {
		if _, err := db.Call("Cuboid.volume", gomdb.Ref(oid)); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			oid := g.Cuboids[rng.Intn(len(g.Cuboids))]
			attr := []string{"V1", "V2", "V3", "V4", "V5", "V6", "V7", "V8"}[rng.Intn(8)]
			vref, err := db.GetAttr(oid, attr)
			if err != nil {
				b.Error(err)
				return
			}
			if err := db.Set(vref.R, "X", gomdb.Float(rng.Float64()*100)); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seq.Add(1)))
		for pb.Next() {
			if _, err := db.Call("Cuboid.volume", gomdb.Ref(g.Cuboids[rng.Intn(len(g.Cuboids))])); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-writerDone
}

// BenchmarkParallelForwardWithWriter measures reader latency under writer
// interference on the default engine: contended reads take the MVCC
// snapshot path instead of queueing behind the writer.
func BenchmarkParallelForwardWithWriter(b *testing.B) { forwardParallelWithWriter(b, false) }

// BenchmarkParallelForwardWithWriterRWMutex is the blocking baseline
// (Config.DisableMVCC): every reader waits for the writer's RWMutex.
func BenchmarkParallelForwardWithWriterRWMutex(b *testing.B) { forwardParallelWithWriter(b, true) }

package gomdb

import (
	"errors"
	"fmt"

	"gomdb/internal/core"
	"gomdb/internal/query"
)

// SnapshotView is an explicit handle on one MVCC snapshot: it pins the
// stable version current at construction and answers every read against the
// object base and GMR state as of that version, concurrent with writers and
// with no locking against them. The per-operation snapshot paths (Query,
// Call, ...) pin for one call each; a view holds its pin until Release, so a
// sequence of reads observes one consistent state — Definition 3.2 holds at
// the pinned version across all of them.
//
// A held pin blocks barrier operations (DDL, Materialize, Dematerialize,
// Close, Crash), so views should be short-lived: read, then Release. All
// reads through a view charge a throwaway clock — they never perturb the
// database's simulated cost accounting.
type SnapshotView struct {
	db      *Database
	snap    *core.Snapshot
	release func()
}

// errMVCCDisabled reports a snapshot request against a database opened with
// Config.DisableMVCC.
var errMVCCDisabled = errors.New("gomdb: MVCC is disabled (Config.DisableMVCC)")

// SnapshotView pins the current stable version and returns a view of it.
// The caller must Release it (releasing twice is harmless).
func (db *Database) SnapshotView() (*SnapshotView, error) {
	if db.mvccSt == nil {
		return nil, errMVCCDisabled
	}
	ver, release := db.mvccSt.Pin()
	return &SnapshotView{db: db, snap: db.GMRs.SnapshotAt(ver), release: release}, nil
}

// Version returns the pinned stable version.
func (v *SnapshotView) Version() uint64 { return v.snap.Version() }

// Release unpins the snapshot. The view must not be used afterwards.
func (v *SnapshotView) Release() { v.release() }

// Call invokes a side-effect-free function or operation at the pinned
// version; materialized functions are answered from the snapshot of their
// GMR. Functions that are not provably side-effect free are refused — a
// snapshot cannot apply updates.
func (v *SnapshotView) Call(fn string, args ...Value) (Value, error) {
	if !v.db.sideEffectFreeCall(fn) {
		return Null(), fmt.Errorf("gomdb: snapshot view: %s is not side-effect free", fn)
	}
	return v.snap.Call(fn, args...)
}

// Query executes a read-only GOMql statement at the pinned version.
// Statements whose plan is not provably read-only are refused.
func (v *SnapshotView) Query(src string, params map[string]Value) (*QueryResult, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if !v.db.Queries.ReadOnlyPlan(q) {
		return nil, fmt.Errorf("gomdb: snapshot view: statement is not read-only")
	}
	return v.db.Queries.Snapshot(v.snap).RunQuery(q, params)
}

// Retrieve answers a tabular GMR query at the pinned version; columns that
// were invalid at that version are recomputed against it, not repaired.
func (v *SnapshotView) Retrieve(gmrName string, spec []FieldSpec) ([]Row, error) {
	return v.snap.Retrieve(gmrName, spec)
}

// GetAttr reads attribute attr of oid at the pinned version.
func (v *SnapshotView) GetAttr(oid OID, attr string) (Value, error) {
	return v.snap.Engine().ReadAttr(Ref(oid), attr)
}

// Extension returns the OIDs of all instances of typeName (and subtypes) at
// the pinned version.
func (v *SnapshotView) Extension(typeName string) []OID {
	return v.snap.Extension(typeName)
}

// CheckConsistency audits a GMR against Definition 3.2 (and, with
// checkComplete, Definition 3.4/6.1) at the pinned version: entries valid at
// the version must match recomputation against the object base at the same
// version, whatever the live engine has done since.
func (v *SnapshotView) CheckConsistency(gmrName string, tol float64, checkComplete bool) (*ConsistencyReport, error) {
	return v.snap.CheckConsistency(gmrName, tol, checkComplete)
}

// MVCCStats describes the version state of the snapshot read path, for
// audits and tests: the simulation harness asserts ActivePins == 0 and all
// capture counts reclaimed once its readers stop.
type MVCCStats struct {
	// Enabled is false when the database was opened with DisableMVCC (all
	// other fields are then zero).
	Enabled bool
	// StableVersion is the last published version.
	StableVersion uint64
	// ActivePins is the number of currently pinned readers.
	ActivePins int
	// PinnedVersions lists the distinct pinned versions, unordered.
	PinnedVersions []uint64
	// PageCaptures, ObjectCaptures, and EntryCaptures count the pre-image
	// captures currently held by the buffer pool, the object directory, and
	// the GMR entry overlay.
	PageCaptures   int
	ObjectCaptures int
	EntryCaptures  int
}

// MVCCStats returns a point-in-time sample of the version state. Counters
// are sampled independently; concurrent operations may shift them between
// reads.
func (db *Database) MVCCStats() MVCCStats {
	if db.mvccSt == nil {
		return MVCCStats{}
	}
	return MVCCStats{
		Enabled:        true,
		StableVersion:  db.mvccSt.Stable(),
		ActivePins:     db.mvccSt.Active(),
		PinnedVersions: db.mvccSt.PinnedVersions(),
		PageCaptures:   db.Pool.VersionCaptureCount(),
		ObjectCaptures: db.Objects.VersionCaptureCount(),
		EntryCaptures:  db.GMRs.EntryCaptureCount(),
	}
}

package gomdb_test

// Tests of the durable backend: open/close/reopen round trips, crash
// semantics (uncheckpointed work is lost, checkpointed work survives),
// recovery-by-rematerialization, the deferred-queue staleness regression,
// schema fingerprint verification, and charge parity (durability must never
// change the simulated cost accounting).

import (
	"errors"
	"strings"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
	"gomdb/internal/storage"
)

func durableConfig(path string) gomdb.Config {
	cfg := gomdb.DefaultConfig()
	cfg.Path = path
	cfg.DefineSchema = func(db *gomdb.Database) error {
		return fixtures.DefineGeometry(db, false)
	}
	return cfg
}

func mustVolume(t *testing.T, db *gomdb.Database, c gomdb.OID) float64 {
	t.Helper()
	v, err := db.Call("Cuboid.volume", gomdb.Ref(c))
	if err != nil {
		t.Fatalf("Cuboid.volume: %v", err)
	}
	return v.F
}

func TestDurableOpenCloseReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("OpenAt fresh: %v", err)
	}
	geo, err := fixtures.PopulateGeometry(db, 8, 42)
	if err != nil {
		t.Fatalf("populate: %v", err)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Name: "Gvw", Funcs: []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true, Strategy: gomdb.Immediate, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatalf("materialize: %v", err)
	}
	c0 := geo.Cuboids[0]
	wantVol := mustVolume(t, db, c0)
	wantObjs := db.Objects.NumObjects()
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	db2, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("OpenAt reopen: %v", err)
	}
	defer db2.Close()
	if db2.Recovery == nil || !db2.Recovery.Recovered {
		t.Fatal("reopen did not report recovery")
	}
	if db2.Recovery.GMRsRebuilt != 1 {
		t.Fatalf("GMRsRebuilt = %d, want 1", db2.Recovery.GMRsRebuilt)
	}
	if got := db2.Objects.NumObjects(); got != wantObjs {
		t.Fatalf("objects after reopen = %d, want %d", got, wantObjs)
	}
	if _, ok := db2.GMRs.Get("Gvw"); !ok {
		t.Fatal("GMR Gvw not rebuilt")
	}
	if got := mustVolume(t, db2, c0); got != wantVol {
		t.Fatalf("volume after reopen = %v, want %v", got, wantVol)
	}
	rep, err := db2.CheckConsistency("Gvw", 1e-9, true)
	if err != nil {
		t.Fatalf("CheckConsistency: %v", err)
	}
	if rep.Err() != nil {
		t.Fatalf("rebuilt GMR inconsistent: %+v", rep)
	}
}

func TestDurableCrashLosesOnlyUncheckpointedWork(t *testing.T) {
	dir := t.TempDir()
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	geo, err := fixtures.PopulateGeometry(db, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	c0 := geo.Cuboids[0]
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before, err := db.GetAttr(c0, "Value")
	if err != nil {
		t.Fatal(err)
	}

	// A bare Set is not a checkpoint point: the update must vanish at a
	// crash...
	if err := db.Set(c0, "Value", gomdb.Float(before.F+1000)); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	db2, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	got, err := db2.GetAttr(c0, "Value")
	if err != nil {
		t.Fatal(err)
	}
	if got.F != before.F {
		t.Fatalf("uncheckpointed update survived the crash: %v, want %v", got.F, before.F)
	}

	// ...while the same update inside a Batch (a checkpoint point) survives.
	if err := db2.Batch(func(tx *gomdb.Tx) error {
		return tx.Set(c0, "Value", gomdb.Float(before.F+1000))
	}); err != nil {
		t.Fatal(err)
	}
	db2.Crash()
	db3, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("reopen after second crash: %v", err)
	}
	defer db3.Close()
	got, err = db3.GetAttr(c0, "Value")
	if err != nil {
		t.Fatal(err)
	}
	if got.F != before.F+1000 {
		t.Fatalf("batched update lost: %v, want %v", got.F, before.F+1000)
	}
}

// Regression for the deferred-queue durability hazard: a crash while
// coalesced rematerializations are pending must not reopen into a database
// whose GMR entries are silently stale (valid flags set, values predating the
// updates). Recovery rebuilds GMRs from current attribute values, so the
// reopened entries must match a fresh recomputation and the queue must be
// empty.
func TestDurableCrashWithPendingDeferredEntries(t *testing.T) {
	dir := t.TempDir()
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	geo, err := fixtures.PopulateGeometry(db, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Materialize(gomdb.MaterializeOptions{
		Name: "Gvw", Funcs: []string{"Cuboid.volume", "Cuboid.weight"},
		Complete: true, Strategy: gomdb.Deferred, Mode: gomdb.ModeObjDep,
	}); err != nil {
		t.Fatal(err)
	}
	c0 := geo.Cuboids[0]
	volBefore := mustVolume(t, db, c0)

	// Stretch the cuboid via a bare elementary update: the deferred GMR
	// enqueues the recomputation instead of performing it.
	v2, err := db.GetAttr(c0, "V2")
	if err != nil {
		t.Fatal(err)
	}
	x, err := db.GetAttr(v2.R, "X")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Set(v2.R, "X", gomdb.Float(x.F+50)); err != nil {
		t.Fatal(err)
	}
	if db.GMRs.PendingLen() == 0 {
		t.Fatal("test premise broken: no pending deferred entries after the update")
	}
	// Checkpoint with the queue non-empty (as a Materialize checkpoint
	// would), then crash before any flush.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pending := db.GMRs.PendingLen()
	db.Crash()

	db2, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if db2.Recovery == nil {
		t.Fatal("no recovery info")
	}
	if db2.Recovery.PendingDiscarded != pending {
		t.Fatalf("PendingDiscarded = %d, want %d", db2.Recovery.PendingDiscarded, pending)
	}
	if got := db2.GMRs.PendingLen(); got != 0 {
		t.Fatalf("reopened database has %d pending entries, want 0", got)
	}
	// The stretched volume must be served, not the pre-update value.
	gotVol := mustVolume(t, db2, c0)
	if gotVol == volBefore {
		t.Fatalf("reopened GMR serves the stale pre-update volume %v", gotVol)
	}
	rep, err := db2.CheckConsistency("Gvw", 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() != nil {
		t.Fatalf("reopened GMR inconsistent with recomputation: %+v", rep)
	}
}

func TestDurableSchemaMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fixtures.PopulateGeometry(db, 4, 3); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := gomdb.DefaultConfig()
	cfg.Path = dir
	cfg.DefineSchema = func(db *gomdb.Database) error {
		return db.DefineType(gomdb.NewTupleType("Widget", gomdb.Attr("W", "float")))
	}
	_, err = gomdb.OpenAt(cfg)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("reopen with a different schema: err=%v, want fingerprint mismatch", err)
	}
}

func TestDurableRestrictedGMRRefused(t *testing.T) {
	db, err := gomdb.OpenAt(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := fixtures.PopulateGeometry(db, 4, 3); err != nil {
		t.Fatal(err)
	}
	_, err = db.Materialize(gomdb.MaterializeOptions{
		Funcs:      []string{"Cuboid.volume"},
		Complete:   true,
		AtomicArgs: map[int]gomdb.ArgRestriction{0: {}},
	})
	if err == nil || !strings.Contains(err.Error(), "restricted") {
		t.Fatalf("restricted GMR on durable database: err=%v, want refusal", err)
	}
}

// A torn data-file write during a checkpoint apply surfaces the simulated
// crash, and recovery repairs the page from the WAL copy — landing on the
// committed (new) state, not the pre-image.
func TestDurableTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	geo, err := fixtures.PopulateGeometry(db, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Creating a cuboid inserts records into the objects heap: every touched
	// page's slotted header (at the page start, inside the half a torn write
	// replaces) changes, so the tear is guaranteed to corrupt the record
	// regardless of where on the page the new data landed.
	mat := geo.MaterialO[0]
	created := fixtures.NewCuboid(db, 9001, 1, 2, 3, 4, 5, 6, mat, 77)
	wantObjs := db.Objects.NumObjects()
	db.Disk.SetFaultPlan(storage.FaultPlan{Rules: []storage.FaultRule{
		{Op: storage.FaultTornWrite, File: "objects", After: 0, Count: 1},
	}})
	err = db.Flush() // checkpoint point; its data-file apply tears
	if !errors.Is(err, gomdb.ErrSimulatedCrash) {
		t.Fatalf("torn checkpoint: err=%v, want ErrSimulatedCrash", err)
	}
	if db.Disk.FaultsInjected() != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", db.Disk.FaultsInjected())
	}
	db.Crash()

	db2, err := gomdb.OpenAt(durableConfig(dir))
	if err != nil {
		t.Fatalf("recovery after torn write: %v", err)
	}
	defer db2.Close()
	if db2.Recovery.TornPagesRepaired == 0 {
		t.Fatal("recovery did not detect and repair the torn page from the WAL")
	}
	if db2.Recovery.WALPagesReplayed == 0 {
		t.Fatal("recovery replayed no WAL pages despite the unfinished apply")
	}
	// The WAL batch committed before the torn apply, so the created cuboid
	// is durable.
	if got := db2.Objects.NumObjects(); got != wantObjs {
		t.Fatalf("objects after recovery = %d, want %d", got, wantObjs)
	}
	if v, err := db2.GetAttr(created, "Value"); err != nil || v.F != 77 {
		t.Fatalf("created cuboid not recovered: v=%v err=%v", v, err)
	}
}

// Durability must be invisible to the simulated cost model: an identical
// workload charges bit-identical Clock counters with and without a durable
// store underneath.
func TestDurableChargeParity(t *testing.T) {
	workload := func(db *gomdb.Database) {
		t.Helper()
		geo, err := fixtures.PopulateGeometry(db, 10, 99)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.Materialize(gomdb.MaterializeOptions{
			Name: "Gvw", Funcs: []string{"Cuboid.volume", "Cuboid.weight"},
			Complete: true, Strategy: gomdb.Deferred, Mode: gomdb.ModeObjDep,
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range geo.Cuboids {
			if i%2 == 0 {
				if err := db.Set(c, "Value", gomdb.Float(float64(i))); err != nil {
					t.Fatal(err)
				}
			}
			mustVolume(t, db, c)
		}
		if err := db.Batch(func(tx *gomdb.Tx) error {
			v2, err := tx.GetAttr(geo.Cuboids[1], "V2")
			if err != nil {
				return err
			}
			return tx.Set(v2.R, "X", gomdb.Float(123))
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	memCfg := gomdb.DefaultConfig()
	memDB := gomdb.Open(memCfg)
	if err := fixtures.DefineGeometry(memDB, false); err != nil {
		t.Fatal(err)
	}
	workload(memDB)
	memClock := memDB.Snapshot()

	durDB, err := gomdb.OpenAt(durableConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	workload(durDB)
	durClock := durDB.Snapshot()
	if err := durDB.Close(); err != nil {
		t.Fatal(err)
	}

	if memClock != durClock {
		t.Fatalf("durability changed the simulated cost accounting:\n  in-memory: %+v\n  durable:   %+v",
			memClock, durClock)
	}
}

package gomdb_test

// Tests of Config.AutoRecluster: a checkpoint reclusters automatically when
// some GMR's recorded traces show a scattered base (high distinct-pages to
// trace-objects ratio), and leaves a base alone when the threshold is not
// met.

import (
	"math/rand"
	"reflect"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

// buildScatteredGeometry populates a cuboid base whose 8n boundary vertices
// are created in one globally shuffled order, so every volume computation's
// trace touches ~8 unrelated heap pages (the same adversarial layout the
// clustering benchmark uses).
func buildScatteredGeometry(t *testing.T, cfg gomdb.Config, n int) (*gomdb.Database, []gomdb.OID) {
	t.Helper()
	db := gomdb.Open(cfg)
	if err := fixtures.DefineGeometry(db, false); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	mats := make([]gomdb.OID, len(fixtures.Materials))
	for i, m := range fixtures.Materials {
		oid, err := db.New("Material", gomdb.Str(m.Name), gomdb.Float(m.SpecWeight))
		if err != nil {
			t.Fatal(err)
		}
		mats[i] = oid
	}
	type box struct{ ox, oy, oz, l, w, h float64 }
	boxes := make([]box, n)
	for i := range boxes {
		boxes[i] = box{
			ox: rng.Float64() * 100, oy: rng.Float64() * 100, oz: rng.Float64() * 100,
			l: 1 + rng.Float64()*9, w: 1 + rng.Float64()*9, h: 1 + rng.Float64()*9,
		}
	}
	corner := func(b box, c int) (x, y, z float64) {
		dx := []float64{0, b.l, b.l, 0, 0, b.l, b.l, 0}
		dy := []float64{0, 0, b.w, b.w, 0, 0, b.w, b.w}
		dz := []float64{0, 0, 0, 0, b.h, b.h, b.h, b.h}
		return b.ox + dx[c], b.oy + dy[c], b.oz + dz[c]
	}
	verts := make([][]gomdb.OID, 8)
	for c := range verts {
		verts[c] = make([]gomdb.OID, n)
	}
	type slot struct{ i, c int }
	slots := make([]slot, 0, 8*n)
	for i := 0; i < n; i++ {
		for c := 0; c < 8; c++ {
			slots = append(slots, slot{i, c})
		}
	}
	rng.Shuffle(len(slots), func(a, b int) { slots[a], slots[b] = slots[b], slots[a] })
	for _, s := range slots {
		x, y, z := corner(boxes[s.i], s.c)
		oid, err := db.New("Vertex", gomdb.Float(x), gomdb.Float(y), gomdb.Float(z))
		if err != nil {
			t.Fatal(err)
		}
		verts[s.c][s.i] = oid
	}
	cuboids := make([]gomdb.OID, n)
	for i := range cuboids {
		attrs := make([]gomdb.Value, 0, 11)
		for c := 0; c < 8; c++ {
			attrs = append(attrs, gomdb.Ref(verts[c][i]))
		}
		attrs = append(attrs,
			gomdb.Ref(mats[rng.Intn(len(mats))]),
			gomdb.Float(10+rng.Float64()*90),
			gomdb.Int(int64(i+1)))
		oid, err := db.New("Cuboid", attrs...)
		if err != nil {
			t.Fatal(err)
		}
		cuboids[i] = oid
	}
	return db, cuboids
}

// ridMap flattens the exported directory to oid -> record id.
func ridMap(db *gomdb.Database) map[gomdb.OID]string {
	out := make(map[gomdb.OID]string)
	for _, e := range db.Objects.ExportDirectory().RIDs {
		out[e.O] = e.R.String()
	}
	return out
}

func TestAutoReclusterTriggersOnScatteredBase(t *testing.T) {
	cfg := gomdb.DefaultConfig()
	// A scattered trace touches nearly one page per object; a clustered one
	// far fewer. Any mid-range ratio separates the two.
	cfg.AutoRecluster = 0.5
	db, cuboids := buildScatteredGeometry(t, cfg, 64)
	materializeGvw(t, db, gomdb.Immediate)

	st := db.GMRs.GMRAccessStats()["Gvw"]
	if st.TraceObjects < 16 {
		t.Fatalf("materialization recorded only %d trace objects", st.TraceObjects)
	}
	if float64(st.DistinctPages) < 0.5*float64(st.TraceObjects) {
		t.Fatalf("base not scattered enough to arm the trigger: pages=%d objects=%d",
			st.DistinctPages, st.TraceObjects)
	}
	before := allVolumes(t, db, cuboids)
	oldRIDs := ridMap(db)

	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	moved := 0
	for oid, rid := range ridMap(db) {
		if oldRIDs[oid] != rid {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("checkpoint with AutoRecluster armed relocated nothing")
	}
	if msgs := db.Objects.AuditDirectory(); len(msgs) != 0 {
		t.Fatalf("directory audit after auto recluster: %v", msgs)
	}
	if after := allVolumes(t, db, cuboids); !reflect.DeepEqual(before, after) {
		t.Fatal("auto recluster changed materialized results")
	}
	rep, err := db.CheckConsistency("Gvw", 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() != nil {
		t.Fatalf("GMR inconsistent after auto recluster: %+v", rep)
	}
}

func TestAutoReclusterRespectsThreshold(t *testing.T) {
	cfg := gomdb.DefaultConfig()
	// DistinctPages can never exceed TraceObjects, so this never fires.
	cfg.AutoRecluster = 10
	db, _ := buildScatteredGeometry(t, cfg, 20)
	materializeGvw(t, db, gomdb.Immediate)
	oldRIDs := ridMap(db)
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got := ridMap(db); !reflect.DeepEqual(oldRIDs, got) {
		t.Fatal("checkpoint relocated objects although the trigger ratio was never met")
	}
}

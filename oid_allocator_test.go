package gomdb_test

import (
	"sync"
	"testing"

	"gomdb"
	"gomdb/internal/fixtures"
)

// hookAlloc is a shared OID allocator whose hook fires before each
// allocation, simulating another engine allocating concurrently at a
// deterministic point. The inHook guard keeps hook-triggered allocations
// from recursing.
type hookAlloc struct {
	mu     sync.Mutex
	next   gomdb.OID
	hook   func()
	inHook bool
}

func (a *hookAlloc) fireHook() {
	a.mu.Lock()
	h, fire := a.hook, a.hook != nil && !a.inHook
	if fire {
		a.inHook = true
	}
	a.mu.Unlock()
	if fire {
		h()
		a.mu.Lock()
		a.inHook = false
		a.mu.Unlock()
	}
}

func (a *hookAlloc) NextOID() gomdb.OID {
	a.fireHook()
	a.mu.Lock()
	defer a.mu.Unlock()
	oid := a.next
	a.next++
	return oid
}

func (a *hookAlloc) PeekOID() gomdb.OID {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.next
}

// TestResultObjectTrackingSharedAllocator is the regression test for a
// foreign-OID leak found while wiring the shard router: the GMR manager
// records the OID window allocated while storing a complex result, and with
// a shared allocator (Config.OIDAllocator, as injected by internal/shard)
// that window can include OIDs handed to a DIFFERENT engine instance whose
// writer allocated concurrently. Before the fix those foreign OIDs entered
// the engine's result-object set — and, on a durable database, the
// persisted ResultObjs metadata. The engine must filter the window against
// its own directory.
func TestResultObjectTrackingSharedAllocator(t *testing.T) {
	alloc := &hookAlloc{next: 1}
	cfgA := gomdb.DefaultConfig()
	cfgA.OIDAllocator = alloc
	dbA := gomdb.Open(cfgA)
	cfgB := gomdb.DefaultConfig()
	cfgB.OIDAllocator = alloc
	dbB := gomdb.Open(cfgB)

	if err := fixtures.DefineCompany(dbA); err != nil {
		t.Fatal(err)
	}
	if err := dbB.DefineType(gomdb.NewTupleType("Thing", gomdb.Attr("N", "int"))); err != nil {
		t.Fatal(err)
	}
	c, err := fixtures.PopulateCompany(dbA, fixtures.CompanyConfig{
		Departments: 2, EmpsPerDep: 3, Projects: 4, JobsPerEmp: 2, ProgsPerProj: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dbA.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Company.matrix"}, Complete: true,
		Strategy: gomdb.Immediate, Mode: gomdb.ModeInfoHiding,
	}); err != nil {
		t.Fatal(err)
	}

	// Create the new project BEFORE arming the hook, so only the
	// rematerialization's result-object allocations interleave with engine
	// B's creates.
	p, err := c.NewProjectWithProgrammers(2)
	if err != nil {
		t.Fatal(err)
	}
	var foreign []gomdb.OID
	alloc.hook = func() {
		oid, err := dbB.New("Thing", gomdb.Int(int64(len(foreign))))
		if err != nil {
			t.Errorf("engine B create: %v", err)
			return
		}
		foreign = append(foreign, oid)
	}
	if _, err := dbA.Call("Company.add_project", gomdb.Ref(c.Comp), gomdb.Ref(p)); err != nil {
		t.Fatal(err)
	}
	alloc.hook = nil
	if len(foreign) == 0 {
		t.Fatal("hook never fired: rematerialization allocated no result objects")
	}

	// Engine A's result-object set must contain only engine A's objects.
	foreignSet := make(map[gomdb.OID]bool, len(foreign))
	for _, oid := range foreign {
		foreignSet[oid] = true
	}
	for _, oid := range dbA.GMRs.ResultObjectIDs() {
		if foreignSet[oid] {
			t.Fatalf("engine A tracks foreign result object %v (owned by engine B)", oid)
		}
		if !dbA.Objects.Exists(oid) {
			t.Fatalf("engine A tracks nonexistent result object %v", oid)
		}
	}
	// And collecting on A must leave B's objects alone.
	if _, err := dbA.GMRs.CollectResultGarbage(); err != nil {
		t.Fatal(err)
	}
	for _, oid := range foreign {
		if !dbB.Objects.Exists(oid) {
			t.Fatalf("engine B object %v vanished after engine A's GC", oid)
		}
	}
}

package gomdb_test

// Race stress for the snapshot read path: unsynchronized reader goroutines
// drive every read surface while one writer updates attributes, runs batches,
// and periodically tears the GMR down and rebuilds it (barrier operations).
// Run under -race this covers the TOCTOU window the snapshot path closed —
// the seed classified Query read-only under the shared lock, dropped it, and
// re-ran under the exclusive lock against state that may have changed in
// between — as well as the capture/reclaim protocol itself.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gomdb"
)

// materializedRectangleDBLazy is materializedRectangleDB with the lazy
// strategy and the memo cache enabled, so the stress covers invalid-entry
// rematerialization and the epoch-tagged memo as well.
func materializedRectangleDBLazy(t *testing.T, n int) (*gomdb.Database, []gomdb.OID, string) {
	t.Helper()
	db := rectangleDB(t)
	for i := 1; i <= n; i++ {
		db.MustNew("Rectangle", gomdb.Float(float64(i)), gomdb.Float(2))
	}
	g, err := db.Materialize(gomdb.MaterializeOptions{
		Funcs: []string{"Rectangle.area"}, Complete: true,
		Strategy: gomdb.Lazy, MemoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, db.Extension("Rectangle"), g.Name
}

func TestSnapshotReadersRaceWriters(t *testing.T) {
	const n = 8
	db, oids, gmrName := materializedRectangleDBLazy(t, n)

	const writerIters = 150
	var stop atomic.Bool
	errs := make(chan error, 16)
	report := func(err error) {
		if err != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}

	var wg sync.WaitGroup
	// Readers: every surface, no locking discipline of their own. Values are
	// checked for shape (area = Width*Height with Height fixed at 2), not for
	// a particular version — any published version is admissible.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				oid := oids[(r+i)%n]
				switch i % 4 {
				case 0:
					v, err := db.Call("Rectangle.area", gomdb.Ref(oid))
					if err != nil {
						report(fmt.Errorf("reader Call: %w", err))
						return
					}
					if f, _ := v.AsFloat(); f <= 0 || f != float64(int(f)) || int(f)%2 != 0 {
						report(fmt.Errorf("reader Call = %v, not an even positive width*2", v))
						return
					}
				case 1:
					if _, err := db.GetAttr(oid, "Width"); err != nil {
						report(fmt.Errorf("reader GetAttr: %w", err))
						return
					}
				case 2:
					if got := len(db.Extension("Rectangle")); got != n {
						report(fmt.Errorf("reader Extension = %d, want %d", got, n))
						return
					}
				case 3:
					qr, err := db.Query(`range r: Rectangle retrieve r.Width where r.area >= 0.0`, nil)
					if err != nil {
						report(fmt.Errorf("reader Query: %w", err))
						return
					}
					if len(qr.Rows) != n {
						report(fmt.Errorf("reader Query rows = %d, want %d", len(qr.Rows), n))
						return
					}
				}
			}
		}(r)
	}

	// Writer: point updates, batches, and periodic dematerialize/materialize
	// pairs so readers race true barrier operations too.
	go func() {
		defer stop.Store(true)
		for i := 0; i < writerIters; i++ {
			oid := oids[i%n]
			switch {
			case i%50 == 49:
				if err := db.Dematerialize(gmrName); err != nil {
					report(fmt.Errorf("writer Dematerialize: %w", err))
					return
				}
				if _, err := db.Materialize(gomdb.MaterializeOptions{
					Funcs: []string{"Rectangle.area"}, Complete: true,
					Strategy: gomdb.Lazy, MemoCache: true,
				}); err != nil {
					report(fmt.Errorf("writer Materialize: %w", err))
					return
				}
			case i%10 == 9:
				if err := db.Batch(func(tx *gomdb.Tx) error {
					for j := 0; j < 3; j++ {
						w := float64((i+j)%5 + 1)
						if err := tx.Set(oids[(i+j)%n], "Width", gomdb.Float(w)); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					report(fmt.Errorf("writer Batch: %w", err))
					return
				}
			default:
				w := float64(i%5 + 1)
				if err := db.Set(oid, "Width", gomdb.Float(w)); err != nil {
					report(fmt.Errorf("writer Set: %w", err))
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Quiesced: no pins may remain, captures must be reclaimed by the last
	// publish, and the rebuilt GMR must satisfy Definition 3.2.
	st := db.MVCCStats()
	if st.ActivePins != 0 {
		t.Fatalf("%d pins leaked", st.ActivePins)
	}
	if st.PageCaptures != 0 || st.ObjectCaptures != 0 || st.EntryCaptures != 0 {
		t.Fatalf("captures leaked after quiescence: %+v", st)
	}
	rep, err := db.CheckConsistency(gmrName, 1e-9, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("post-race audit: %v", err)
	}
}

module gomdb

go 1.22
